// Tests for the compact routing scheme (the Section 5 open-problem regime:
// stretch 3 with ~sqrt(n) routing state).
#include <gtest/gtest.h>

#include <cmath>

#include "apps/compact_routing.h"
#include "graph/bfs.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace ultra::apps {
namespace {

using graph::Graph;
using graph::VertexId;

TEST(CompactRouting, DeliversEverywhereWithStretch3) {
  util::Rng rng(3);
  const Graph g = graph::connected_gnm(250, 1250, rng);
  const CompactRouting scheme(g, 7);
  for (VertexId u = 0; u < g.num_vertices(); u += 9) {
    const auto dist = graph::bfs_distances(g, u);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (u == v) continue;
      const auto route = scheme.route(u, v);
      ASSERT_TRUE(route.delivered) << u << "->" << v;
      EXPECT_EQ(route.path.front(), u);
      EXPECT_EQ(route.path.back(), v);
      EXPECT_LE(route.path.size() - 1, 3u * dist[v]) << u << "->" << v;
      // Every hop is a real edge.
      for (std::size_t i = 0; i + 1 < route.path.size(); ++i) {
        ASSERT_TRUE(g.has_edge(route.path[i], route.path[i + 1]));
      }
    }
  }
}

TEST(CompactRouting, DirectModeIsExact) {
  // Adjacent pairs that share no landmark-shadow route exactly (hop count 1)
  // whenever the destination is in the source's cluster; overall, adjacent
  // routes never exceed 3 hops.
  util::Rng rng(5);
  const Graph g = graph::connected_gnm(180, 900, rng);
  const CompactRouting scheme(g, 9);
  std::uint64_t exact = 0, total = 0;
  for (const auto& e : g.edges()) {
    const auto route = scheme.route(e.u, e.v);
    ASSERT_TRUE(route.delivered);
    EXPECT_LE(route.path.size() - 1, 3u);
    exact += (route.path.size() == 2);
    ++total;
  }
  EXPECT_GT(2 * exact, total);  // most adjacent pairs route directly
}

TEST(CompactRouting, SelfRouteTrivial) {
  const Graph g = graph::cycle_graph(10);
  const CompactRouting scheme(g, 1);
  const auto route = scheme.route(4, 4);
  EXPECT_TRUE(route.delivered);
  EXPECT_EQ(route.path.size(), 1u);
}

TEST(CompactRouting, DisconnectedReportsFailure) {
  const Graph g = Graph::from_edges(6, {{0, 1}, {1, 2}, {3, 4}, {4, 5}});
  const CompactRouting scheme(g, 11);
  const auto route = scheme.route(0, 5);
  EXPECT_FALSE(route.delivered);
  const auto ok = scheme.route(0, 2);
  EXPECT_TRUE(ok.delivered);
}

TEST(CompactRouting, TableSizesNearSqrtN) {
  util::Rng rng(13);
  const Graph g = graph::connected_gnm(2000, 16000, rng);
  const CompactRouting scheme(g, 13);
  // Average routing state ~ O(sqrt(n) log n)-ish words, far below n.
  EXPECT_LT(scheme.average_table_words(),
            20.0 * std::sqrt(2000.0) * std::log2(2000.0));
  EXPECT_GT(scheme.num_landmarks(), 0u);
}

TEST(CompactRouting, LandmarkDestinationsRoutable) {
  util::Rng rng(17);
  const Graph g = graph::connected_gnm(150, 600, rng);
  const CompactRouting scheme(g, 19);
  // Route to each landmark (pivot of itself).
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto addr = scheme.address_of(v);
    if (addr.landmark != v) continue;  // not a landmark
    const auto dist = graph::bfs_distances(g, v);
    for (VertexId u = 0; u < g.num_vertices(); u += 13) {
      if (u == v) continue;
      const auto route = scheme.route(u, v);
      ASSERT_TRUE(route.delivered);
      // Routing to a landmark is exact (climb its own BFS tree).
      EXPECT_LE(route.path.size() - 1, dist[u] + 0u);
    }
  }
}

TEST(CompactRouting, StretchFuzzAcrossFamilies) {
  // Differential routing stretch across structurally different families:
  // delivered routes never exceed 3x the exact BFS distance, on every
  // family x seed combination (the serve-layer differential suite covers
  // the distance oracle; this is its routing counterpart).
  for (int family = 0; family < 4; ++family) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      util::Rng rng(seed * 100 + static_cast<std::uint64_t>(family));
      Graph g;
      switch (family) {
        case 0: g = graph::connected_gnm(120, 480, rng); break;
        case 1: g = graph::random_regular(120, 4, rng); break;
        case 2: g = graph::random_tree(130, rng); break;
        default: g = graph::preferential_attachment(110, 3, rng); break;
      }
      const CompactRouting scheme(g, seed);
      for (VertexId u = 0; u < g.num_vertices(); u += 11) {
        const auto dist = graph::bfs_distances(g, u);
        for (VertexId v = 0; v < g.num_vertices(); v += 3) {
          if (u == v) continue;
          const auto route = scheme.route(u, v);
          ASSERT_TRUE(route.delivered)
              << "family " << family << " seed " << seed << " " << u << "->"
              << v;
          ASSERT_LE(route.path.size() - 1, 3u * dist[v])
              << "family " << family << " seed " << seed << " " << u << "->"
              << v;
          for (std::size_t i = 0; i + 1 < route.path.size(); ++i) {
            ASSERT_TRUE(g.has_edge(route.path[i], route.path[i + 1]));
          }
        }
      }
    }
  }
}

TEST(CompactRouting, HeaderSizeIsConstantAndBounded) {
  // The packet header is the destination address: exactly three machine
  // words (node, landmark, dfs_number) regardless of n — the compact-routing
  // contract — and every field stays inside its documented range.
  static_assert(sizeof(CompactRouting::Address) <=
                    3 * sizeof(graph::VertexId) + alignof(graph::VertexId),
                "Address must stay a constant-size 3-word header");
  util::Rng rng(31);
  const Graph g = graph::connected_gnm(400, 2000, rng);
  const CompactRouting scheme(g, 31);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto a = scheme.address_of(v);
    EXPECT_EQ(a.node, v);
    EXPECT_NE(a.landmark, graph::kInvalidVertex);
    EXPECT_LT(a.landmark, g.num_vertices());
    EXPECT_LT(a.dfs_number, g.num_vertices());
  }
}

TEST(CompactRouting, AddressesAreCompact) {
  util::Rng rng(19);
  const Graph g = graph::connected_gnm(100, 400, rng);
  const CompactRouting scheme(g, 23);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto a = scheme.address_of(v);
    EXPECT_EQ(a.node, v);
    EXPECT_NE(a.landmark, graph::kInvalidVertex);
    EXPECT_LT(a.dfs_number, g.num_vertices());
  }
}

}  // namespace
}  // namespace ultra::apps
