#include <gtest/gtest.h>

#include <queue>

#include "graph/bfs.h"
#include "graph/distances.h"
#include "graph/generators.h"
#include "graph/girth.h"
#include "util/rng.h"

namespace ultra::graph {
namespace {

// Reference BFS for cross-checking.
std::vector<std::uint32_t> reference_bfs(const Graph& g, VertexId s) {
  std::vector<std::uint32_t> dist(g.num_vertices(), kUnreachable);
  std::queue<VertexId> q;
  dist[s] = 0;
  q.push(s);
  while (!q.empty()) {
    const VertexId v = q.front();
    q.pop();
    for (const VertexId w : g.neighbors(v)) {
      if (dist[w] == kUnreachable) {
        dist[w] = dist[v] + 1;
        q.push(w);
      }
    }
  }
  return dist;
}

TEST(Bfs, MatchesReferenceOnRandomGraphs) {
  util::Rng rng(3);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = erdos_renyi_gnm(80, 160, rng);
    for (VertexId s = 0; s < 10; ++s) {
      EXPECT_EQ(bfs_distances(g, s), reference_bfs(g, s));
    }
  }
}

TEST(Bfs, ParentsFormShortestPathTree) {
  util::Rng rng(4);
  const Graph g = connected_gnm(60, 120, rng);
  const BfsResult r = bfs(g, 0);
  for (VertexId v = 1; v < g.num_vertices(); ++v) {
    ASSERT_NE(r.parent[v], kInvalidVertex);
    EXPECT_EQ(r.dist[v], r.dist[r.parent[v]] + 1);
    EXPECT_TRUE(g.has_edge(v, r.parent[v]));
  }
}

TEST(Bfs, TruncationStopsAtMaxDist) {
  const Graph g = path_graph(20);
  const auto d = bfs_distances(g, 0, 5);
  EXPECT_EQ(d[5], 5u);
  EXPECT_EQ(d[6], kUnreachable);
}

TEST(Bfs, ShortestPathEndpointsAndLength) {
  const Graph g = cycle_graph(11);
  const auto p = shortest_path(g, 0, 4);
  ASSERT_EQ(p.size(), 5u);
  EXPECT_EQ(p.front(), 0u);
  EXPECT_EQ(p.back(), 4u);
  for (std::size_t i = 0; i + 1 < p.size(); ++i) {
    EXPECT_TRUE(g.has_edge(p[i], p[i + 1]));
  }
}

TEST(Bfs, ShortestPathDisconnectedEmpty) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {2, 3}});
  EXPECT_TRUE(shortest_path(g, 0, 3).empty());
}

TEST(Bfs, BallContents) {
  const Graph g = path_graph(10);
  const auto b = ball(g, 5, 2);
  std::set<VertexId> s(b.begin(), b.end());
  EXPECT_EQ(s, (std::set<VertexId>{3, 4, 5, 6, 7}));
}

TEST(MultiSourceBfs, DistanceIsMinOverSources) {
  util::Rng rng(5);
  const Graph g = connected_gnm(70, 140, rng);
  const std::vector<VertexId> sources{3, 40, 66};
  const auto ms = multi_source_bfs(g, sources);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    std::uint32_t best = kUnreachable;
    for (const VertexId s : sources) {
      best = std::min(best, bfs_distances(g, s)[v]);
    }
    EXPECT_EQ(ms.dist[v], best);
  }
}

TEST(MultiSourceBfs, NearestIsMinIdAmongClosest) {
  util::Rng rng(6);
  const Graph g = connected_gnm(70, 150, rng);
  const std::vector<VertexId> sources{10, 20, 30, 40};
  const auto ms = multi_source_bfs(g, sources);
  std::vector<std::vector<std::uint32_t>> dist;
  for (const VertexId s : sources) dist.push_back(bfs_distances(g, s));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    VertexId expect = kInvalidVertex;
    for (std::size_t i = 0; i < sources.size(); ++i) {
      if (dist[i][v] == ms.dist[v] && sources[i] < expect) {
        expect = sources[i];
      }
    }
    EXPECT_EQ(ms.nearest[v], expect) << "v=" << v;
  }
}

TEST(MultiSourceBfs, ParentChainsLeadToNearest) {
  util::Rng rng(7);
  const Graph g = connected_gnm(50, 100, rng);
  const std::vector<VertexId> sources{1, 25, 49};
  const auto ms = multi_source_bfs(g, sources);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    VertexId x = v;
    std::uint32_t steps = 0;
    while (ms.parent[x] != kInvalidVertex) {
      x = ms.parent[x];
      ++steps;
      ASSERT_LE(steps, g.num_vertices());
    }
    EXPECT_EQ(x, ms.nearest[v]);
    EXPECT_EQ(steps, ms.dist[v]);
  }
}

TEST(MultiSourceBfs, PathVerticesShareNearest) {
  // The Lemma 7 forest property: every vertex on P(v, p(v)) has the same p.
  util::Rng rng(8);
  const Graph g = connected_gnm(60, 130, rng);
  const std::vector<VertexId> sources{2, 30};
  const auto ms = multi_source_bfs(g, sources);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (VertexId x = v; ms.parent[x] != kInvalidVertex; x = ms.parent[x]) {
      EXPECT_EQ(ms.nearest[x], ms.nearest[v]);
    }
  }
}

TEST(MultiSourceBfs, RespectsTruncation) {
  const Graph g = path_graph(30);
  const std::vector<VertexId> sources{0};
  const auto ms = multi_source_bfs(g, sources, 4);
  EXPECT_EQ(ms.dist[4], 4u);
  EXPECT_EQ(ms.dist[5], kUnreachable);
  EXPECT_EQ(ms.nearest[5], kInvalidVertex);
}

TEST(Diameter, PathAndCycle) {
  EXPECT_EQ(exact_diameter(path_graph(17)), 16u);
  EXPECT_EQ(exact_diameter(cycle_graph(10)), 5u);
  EXPECT_EQ(exact_diameter(cycle_graph(11)), 5u);
  EXPECT_EQ(eccentricity(path_graph(17), 8), 8u);
}

TEST(Diameter, DoubleSweepExactOnTrees) {
  util::Rng rng(9);
  const Graph t = random_tree(200, rng);
  EXPECT_EQ(double_sweep_diameter_lb(t), exact_diameter(t));
}

TEST(DistanceMatrix, MatchesBfs) {
  util::Rng rng(10);
  const Graph g = erdos_renyi_gnm(40, 70, rng);
  const DistanceMatrix m(g);
  for (VertexId u = 0; u < 40; u += 7) {
    const auto d = bfs_distances(g, u);
    for (VertexId v = 0; v < 40; ++v) EXPECT_EQ(m.at(u, v), d[v]);
  }
}

TEST(Girth, KnownValues) {
  EXPECT_EQ(girth(cycle_graph(7)), 7u);
  EXPECT_EQ(girth(complete_graph(5)), 3u);
  EXPECT_EQ(girth(complete_bipartite(3, 3)), 4u);
  EXPECT_EQ(girth(path_graph(9)), kInfiniteGirth);
  EXPECT_EQ(girth(hypercube(4)), 4u);
  EXPECT_EQ(girth(grid_graph(4, 4)), 4u);
}

TEST(Girth, TwoDisjointCyclesTakesShorter) {
  GraphBuilder b;
  // Triangle 0-1-2, square 10-11-12-13.
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  b.add_edge(10, 11);
  b.add_edge(11, 12);
  b.add_edge(12, 13);
  b.add_edge(13, 10);
  EXPECT_EQ(girth(std::move(b).build()), 3u);
}

}  // namespace
}  // namespace ultra::graph
