#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "check/certify.h"
#include "core/fib_distortion.h"
#include "core/fibonacci.h"
#include "graph/bfs.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "spanner/evaluate.h"
#include "util/fibonacci.h"
#include "util/rng.h"
#include "util/saturating.h"

namespace ultra::core {
namespace {

using graph::Graph;
using graph::VertexId;

TEST(FibLevels, PlanBasicShape) {
  const FibonacciLevels lv =
      FibonacciLevels::plan(100000, {.order = 3, .eps = 0.5});
  EXPECT_GE(lv.order, 1u);
  EXPECT_LE(lv.order, 3u);
  EXPECT_EQ(lv.ell, static_cast<std::uint32_t>(std::ceil(3.0 * 3 / 0.5)) + 2);
  ASSERT_EQ(lv.q.size(), lv.order + 1);
  EXPECT_DOUBLE_EQ(lv.q[0], 1.0);
  for (std::size_t i = 1; i < lv.q.size(); ++i) {
    EXPECT_LE(lv.q[i], lv.q[i - 1]);
    EXPECT_GE(lv.q[i], 1.0 / 100000.0);
  }
}

TEST(FibLevels, Lemma8FirstProbability) {
  // q_1 = n^{-alpha} ell^{-phi} with alpha = 1/(F_{o+3}-1).
  const std::uint64_t n = 1 << 16;
  const unsigned o = 2;
  const FibonacciLevels lv =
      FibonacciLevels::plan(n, {.order = o, .eps = 1.0, .ell = 8});
  const double alpha = 1.0 / (static_cast<double>(util::fibonacci(o + 3)) - 1);
  const double want = std::pow(static_cast<double>(n), -alpha) *
                      std::pow(8.0, -util::kGoldenRatio);
  EXPECT_NEAR(lv.q[1], want, want * 1e-9);
}

TEST(FibLevels, MessageAdjustmentBoundsRatios) {
  const std::uint64_t n = 1 << 20;
  const FibonacciLevels lv = FibonacciLevels::plan(
      n, {.order = 4, .eps = 0.5, .ell = 0, .message_t = 4.0});
  const double cap = std::pow(static_cast<double>(n), 1.0 / 4.0);
  for (std::size_t i = 0; i + 1 < lv.q.size(); ++i) {
    EXPECT_LE(lv.q[i] / lv.q[i + 1], cap * (1.0 + 1e-9)) << "i=" << i;
  }
  // Order grows by at most t.
  const FibonacciLevels base = FibonacciLevels::plan(
      n, {.order = 4, .eps = 0.5, .ell = 0, .message_t = 0.0});
  EXPECT_LE(lv.order, base.order + 4);
}

TEST(FibLevels, RadiusSaturates) {
  FibonacciLevels lv;
  lv.ell = 100;
  lv.order = 9;
  EXPECT_EQ(lv.radius(0), 1u);
  EXPECT_EQ(lv.radius(2), 10000u);
  EXPECT_EQ(lv.radius(9), std::uint32_t{1} << 31);
}

TEST(FibLevels, SampleLevelsNested) {
  util::Rng rng(3);
  const FibonacciLevels lv =
      FibonacciLevels::plan(5000, {.order = 3, .eps = 1.0, .ell = 5});
  const auto level = lv.sample_levels(5000, rng);
  std::vector<std::uint64_t> counts(lv.order + 1, 0);
  for (const unsigned l : level) {
    ASSERT_LE(l, lv.order);
    for (unsigned i = 0; i <= l; ++i) ++counts[i];
  }
  EXPECT_EQ(counts[0], 5000u);
  // |V_i| concentrates near q_i * n.
  for (unsigned i = 1; i <= lv.order; ++i) {
    const double expect = lv.q[i] * 5000.0;
    EXPECT_NEAR(static_cast<double>(counts[i]), expect,
                5.0 * std::sqrt(expect) + 8.0)
        << "level " << i;
  }
}

// Fixed, deterministic levels for structural checks.
std::vector<unsigned> deterministic_levels(VertexId n, unsigned order) {
  std::vector<unsigned> level(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    unsigned l = 0;
    std::uint32_t step = 13;
    for (unsigned i = 1; i <= order; ++i) {
      step *= 7;
      if (v % step == 0) l = i; else break;
    }
    level[v] = l;
  }
  return level;
}

TEST(Fibonacci, ParentPathsAreExactInSpanner) {
  util::Rng rng(5);
  const Graph g = graph::connected_gnm(400, 1600, rng);
  FibonacciLevels lv = FibonacciLevels::plan(400, {.order = 2, .eps = 1.0,
                                                   .ell = 5});
  const auto level = deterministic_levels(400, lv.order);
  const auto result = build_fibonacci_with_levels(g, lv, level);
  const Graph sg = result.spanner.to_graph();

  for (unsigned i = 1; i <= lv.order; ++i) {
    std::vector<VertexId> vi;
    for (VertexId v = 0; v < 400; ++v) {
      if (level[v] >= i) vi.push_back(v);
    }
    if (vi.empty()) continue;
    const auto ms = graph::multi_source_bfs(g, vi, lv.radius(i - 1));
    for (VertexId v = 0; v < 400; ++v) {
      if (ms.dist[v] == graph::kUnreachable) continue;
      // dist_S(v, p_i(v)) == dist_G(v, V_i): the parent path is exact.
      const auto ds = graph::bfs_distances(sg, v, ms.dist[v] + 1);
      EXPECT_EQ(ds[ms.nearest[v]], ms.dist[v]) << "level " << i << " v " << v;
    }
  }
}

struct FibCase {
  const char* family;
  VertexId n;
  std::uint64_t m;
  unsigned order;
  std::uint32_t ell;
  std::uint64_t seed;
};

class FibonacciProperty : public ::testing::TestWithParam<FibCase> {};

Graph make_fib_graph(const FibCase& c, util::Rng& rng) {
  const std::string fam = c.family;
  if (fam == "gnm") return graph::connected_gnm(c.n, c.m, rng);
  if (fam == "chain") return graph::clique_chain(c.n / 12, 8, 4);
  if (fam == "torus") {
    const auto side = static_cast<VertexId>(std::sqrt(c.n));
    return graph::torus_graph(side, side);
  }
  ADD_FAILURE() << "unknown family";
  return Graph();
}

TEST_P(FibonacciProperty, DistortionWithinTheorem7Bound) {
  const FibCase c = GetParam();
  util::Rng rng(c.seed);
  const Graph g = make_fib_graph(c, rng);
  const FibonacciParams params{.order = c.order, .eps = 1.0, .ell = c.ell,
                               .message_t = 0.0, .seed = c.seed};
  const auto result = build_fibonacci(g, params);
  const auto& lv = result.stats.levels;

  EXPECT_TRUE(
      graph::same_connectivity(g, result.spanner.to_graph()));

  const auto report = spanner::evaluate_sampled(g, result.spanner, 20, rng);
  EXPECT_TRUE(report.connectivity_preserved);
  for (std::size_t d = 1; d < report.by_distance.size(); ++d) {
    if (report.by_distance[d].pairs == 0) continue;
    const std::uint64_t worst = d + report.by_distance[d].max_add;
    EXPECT_LE(worst, fib_pair_bound(lv.ell, lv.order, d))
        << "family=" << c.family << " d=" << d;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, FibonacciProperty,
    ::testing::Values(FibCase{"gnm", 500, 3000, 2, 6, 1},
                      FibCase{"gnm", 500, 3000, 2, 6, 2},
                      FibCase{"gnm", 800, 6000, 3, 8, 3},
                      FibCase{"gnm", 800, 2400, 2, 10, 4},
                      FibCase{"chain", 600, 0, 2, 6, 5},
                      FibCase{"chain", 960, 0, 3, 8, 6},
                      FibCase{"torus", 900, 0, 2, 8, 7},
                      FibCase{"torus", 1600, 0, 3, 10, 8}),
    [](const ::testing::TestParamInfo<FibCase>& info) {
      return std::string(info.param.family) + "_n" +
             std::to_string(info.param.n) + "_o" +
             std::to_string(info.param.order) + "_l" +
             std::to_string(info.param.ell) + "_s" +
             std::to_string(info.param.seed);
    });

TEST(Fibonacci, BallMembersReachedExactly) {
  // For every v ∈ V_{i-1} and u ∈ B_{i+1,ell}(v), dist_S(v,u) = dist_G(v,u).
  util::Rng rng(9);
  const Graph g = graph::connected_gnm(300, 1500, rng);
  const FibonacciLevels lv =
      FibonacciLevels::plan(300, {.order = 2, .eps = 1.0, .ell = 4});
  const auto level = deterministic_levels(300, lv.order);
  const auto result = build_fibonacci_with_levels(g, lv, level);
  const Graph sg = result.spanner.to_graph();

  const unsigned i = 1;
  std::vector<VertexId> vi1, vi2;
  for (VertexId v = 0; v < 300; ++v) {
    if (level[v] >= i) vi1.push_back(v);
    if (level[v] >= i + 1) vi2.push_back(v);
  }
  const auto lim = graph::multi_source_bfs(g, vi2, lv.radius(i));
  for (VertexId v = 0; v < 300; ++v) {  // v ∈ V_0 = V_{i-1}
    const auto dg = graph::bfs_distances(g, v, lv.radius(i));
    const auto ds = graph::bfs_distances(sg, v);
    for (const VertexId u : vi1) {
      if (dg[u] == graph::kUnreachable || dg[u] == 0) continue;
      const bool within_limiter =
          lim.dist[v] == graph::kUnreachable || dg[u] < lim.dist[v];
      if (within_limiter) {
        EXPECT_EQ(ds[u], dg[u]) << "v=" << v << " u=" << u;
      }
    }
  }
}

TEST(Fibonacci, StatsAccountingConsistent) {
  util::Rng rng(11);
  const Graph g = graph::connected_gnm(600, 3600, rng);
  const auto result =
      build_fibonacci(g, {.order = 3, .eps = 1.0, .ell = 6, .seed = 4});
  const auto& st = result.stats;
  EXPECT_EQ(st.level_sizes[0], 600u);
  for (unsigned i = 1; i <= st.levels.order; ++i) {
    EXPECT_LE(st.level_sizes[i], st.level_sizes[i - 1]);
  }
  std::uint64_t accounted = 0;
  for (const auto x : st.parent_edges) accounted += x;
  for (const auto x : st.ball_edges) accounted += x;
  // Edge sets overlap (paths share edges), so the sum over-counts.
  EXPECT_GE(accounted, st.spanner_size);
  EXPECT_EQ(st.spanner_size, result.spanner.size());
}

TEST(Fibonacci, ExactSpannerCertificate) {
  // Theorem 7's bound is distance-sensitive; the strongest linear bound it
  // implies is alpha = max_d fib_pair_bound(d) / d, which the certificate
  // then verifies over every pair.
  util::Rng rng(17);
  const Graph g = graph::connected_gnm(300, 1200, rng);
  const auto result =
      build_fibonacci(g, {.order = 2, .eps = 1.0, .ell = 5, .seed = 9});
  const auto& lv = result.stats.levels;
  double alpha = 1.0;
  for (std::uint64_t d = 1; d <= g.num_vertices(); ++d) {
    const std::uint64_t bound = fib_pair_bound(lv.ell, lv.order, d);
    ASSERT_NE(bound, util::kSaturated) << "d=" << d;
    alpha = std::max(alpha,
                     static_cast<double>(bound) / static_cast<double>(d));
  }
  check::SpannerCertifyOptions opts;
  opts.alpha = alpha;
  opts.sample_sources = 0;
  const auto cert = check::certify_spanner(g, result.spanner, opts);
  EXPECT_TRUE(cert.ok) << cert.violation;
}

TEST(Fibonacci, DeterministicForSeed) {
  util::Rng rng(13);
  const Graph g = graph::connected_gnm(300, 1200, rng);
  const FibonacciParams p{.order = 2, .eps = 1.0, .ell = 5, .seed = 77};
  const auto a = build_fibonacci(g, p);
  const auto b = build_fibonacci(g, p);
  EXPECT_EQ(a.stats.spanner_size, b.stats.spanner_size);
}

}  // namespace
}  // namespace ultra::core
