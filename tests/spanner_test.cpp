#include <gtest/gtest.h>

#include "graph/bfs.h"
#include "graph/generators.h"
#include "spanner/evaluate.h"
#include "spanner/spanner.h"
#include "util/rng.h"

namespace ultra::spanner {
namespace {

TEST(Spanner, AddAndContains) {
  const Graph g = graph::cycle_graph(6);
  Spanner s(g);
  s.add_edge(0, 1);
  s.add_edge(1, 0);  // idempotent
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.contains(0, 1));
  EXPECT_TRUE(s.contains(1, 0));
  EXPECT_FALSE(s.contains(1, 2));
}

TEST(Spanner, RejectsNonHostEdge) {
  const Graph g = graph::path_graph(4);
  Spanner s(g);
  EXPECT_THROW(s.add_edge(0, 2), std::invalid_argument);
}

TEST(Spanner, AddPathAndIncident) {
  const Graph g = graph::cycle_graph(8);
  Spanner s(g);
  const std::vector<graph::VertexId> path{0, 1, 2, 3};
  s.add_path(path);
  EXPECT_EQ(s.size(), 3u);
  s.add_all_incident(5);
  EXPECT_TRUE(s.contains(4, 5));
  EXPECT_TRUE(s.contains(5, 6));
}

TEST(Spanner, ToGraphPreservesEdges) {
  const Graph g = graph::complete_graph(5);
  Spanner s(g);
  s.add_edge(0, 1);
  s.add_edge(2, 3);
  const Graph sg = s.to_graph();
  EXPECT_EQ(sg.num_vertices(), 5u);
  EXPECT_EQ(sg.num_edges(), 2u);
  EXPECT_TRUE(sg.has_edge(0, 1));
}

TEST(Evaluate, IdentitySpannerHasNoDistortion) {
  util::Rng rng(3);
  const Graph g = graph::connected_gnm(40, 80, rng);
  Spanner s(g);
  for (const graph::Edge& e : g.edges()) s.add_edge(e);
  const DistortionReport r = evaluate_exact(g, s);
  EXPECT_DOUBLE_EQ(r.max_mult, 1.0);
  EXPECT_EQ(r.max_add, 0u);
  EXPECT_TRUE(r.connectivity_preserved);
  EXPECT_EQ(r.pairs, 40u * 39u);  // ordered pairs
}

TEST(Evaluate, CycleMinusEdge) {
  // C_n minus one edge: the removed edge's endpoints go from distance 1 to
  // n-1; multiplicative stretch n-1, additive n-2.
  const Graph g = graph::cycle_graph(10);
  Spanner s(g);
  for (const graph::Edge& e : g.edges()) {
    if (!(e == graph::make_edge(0, 9))) s.add_edge(e);
  }
  const DistortionReport r = evaluate_exact(g, s);
  EXPECT_DOUBLE_EQ(r.max_mult, 9.0);
  EXPECT_EQ(r.max_add, 8u);
  EXPECT_TRUE(r.connectivity_preserved);
  // beta for alpha=1 equals the max additive surplus.
  EXPECT_DOUBLE_EQ(r.beta_for_alpha(1.0), 8.0);
  // For alpha = 9 no additive term is needed.
  EXPECT_DOUBLE_EQ(r.beta_for_alpha(9.0), 0.0);
}

TEST(Evaluate, DisconnectionDetected) {
  const Graph g = graph::path_graph(4);
  Spanner s(g);
  s.add_edge(0, 1);  // drops (1,2), (2,3)
  const DistortionReport r = evaluate_exact(g, s);
  EXPECT_FALSE(r.connectivity_preserved);
}

TEST(Evaluate, ByDistanceBucketsConsistent) {
  const Graph g = graph::cycle_graph(12);
  Spanner s(g);
  for (const graph::Edge& e : g.edges()) {
    if (!(e == graph::make_edge(0, 11))) s.add_edge(e);
  }
  const DistortionReport r = evaluate_exact(g, s);
  std::uint64_t total = 0;
  for (std::size_t d = 1; d < r.by_distance.size(); ++d) {
    total += r.by_distance[d].pairs;
    if (r.by_distance[d].pairs > 0) {
      EXPECT_GE(r.by_distance[d].max_mult, 1.0);
      EXPECT_LE(r.by_distance[d].mean_mult(),
                r.by_distance[d].max_mult + 1e-12);
    }
  }
  EXPECT_EQ(total, r.pairs);
}

TEST(Evaluate, SampledSubsetOfExact) {
  util::Rng rng(5);
  const Graph g = graph::connected_gnm(60, 120, rng);
  Spanner s(g);
  // Keep a BFS tree only: guaranteed connected, distorted.
  const auto tree = graph::bfs(g, 0);
  for (graph::VertexId v = 1; v < g.num_vertices(); ++v) {
    s.add_edge(v, tree.parent[v]);
  }
  const DistortionReport exact = evaluate_exact(g, s);
  const DistortionReport sampled = evaluate_sampled(g, s, 20, rng);
  EXPECT_LE(sampled.max_mult, exact.max_mult + 1e-12);
  EXPECT_LE(sampled.max_add, exact.max_add);
  EXPECT_GT(sampled.pairs, 0u);
}

TEST(Evaluate, FromSourcesUsesExactlyThoseSources) {
  const Graph g = graph::path_graph(6);
  Spanner s(g);
  for (const graph::Edge& e : g.edges()) s.add_edge(e);
  const std::vector<graph::VertexId> sources{0};
  const DistortionReport r = evaluate_from_sources(g, s, sources);
  EXPECT_EQ(r.pairs, 5u);
}

TEST(Evaluate, PairStretch) {
  const Graph g = graph::cycle_graph(8);
  Spanner s(g);
  for (const graph::Edge& e : g.edges()) {
    if (!(e == graph::make_edge(0, 7))) s.add_edge(e);
  }
  const auto ps = pair_stretch(g, s.to_graph(), 0, 7);
  EXPECT_EQ(ps.dist_g, 1u);
  EXPECT_EQ(ps.dist_s, 7u);
}

}  // namespace
}  // namespace ultra::spanner
