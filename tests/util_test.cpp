#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "util/fibonacci.h"
#include "util/rng.h"
#include "util/saturating.h"
#include "util/stats.h"
#include "util/table.h"

namespace ultra::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliMeanApproximatesP) {
  Rng rng(17);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SampleIndicesDistinct) {
  Rng rng(23);
  const auto s = rng.sample_indices(100, 30);
  std::set<std::uint32_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (const auto x : s) EXPECT_LT(x, 100u);
}

TEST(Rng, SampleIndicesAllWhenKTooLarge) {
  Rng rng(29);
  const auto s = rng.sample_indices(5, 50);
  EXPECT_EQ(s.size(), 5u);
}

TEST(Saturating, AddSaturates) {
  EXPECT_EQ(sat_add(2, 3), 5u);
  EXPECT_EQ(sat_add(kSaturated, 1), kSaturated);
  EXPECT_EQ(sat_add(kSaturated - 1, 5), kSaturated);
}

TEST(Saturating, MulSaturates) {
  EXPECT_EQ(sat_mul(6, 7), 42u);
  EXPECT_EQ(sat_mul(0, kSaturated), 0u);
  EXPECT_EQ(sat_mul(std::uint64_t{1} << 33, std::uint64_t{1} << 33),
            kSaturated);
}

TEST(Saturating, PowBasics) {
  EXPECT_EQ(sat_pow(2, 10), 1024u);
  EXPECT_EQ(sat_pow(0, 0), 1u);
  EXPECT_EQ(sat_pow(0, 5), 0u);
  EXPECT_EQ(sat_pow(1, 1000), 1u);
  EXPECT_EQ(sat_pow(10, 19), 10000000000000000000ull);
  EXPECT_EQ(sat_pow(10, 20), kSaturated);
  EXPECT_EQ(sat_pow(4, 4), 256u);
  EXPECT_EQ(sat_pow(256, 256), kSaturated);
}

TEST(Saturating, Logs) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(1023), 9u);
  EXPECT_EQ(floor_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1025), 11u);
}

TEST(Saturating, LogStar) {
  EXPECT_EQ(log_star(1), 0u);
  EXPECT_EQ(log_star(2), 1u);
  EXPECT_EQ(log_star(4), 2u);
  EXPECT_EQ(log_star(16), 3u);
  EXPECT_EQ(log_star(65536), 4u);
  EXPECT_EQ(log_star(std::uint64_t{1} << 63), 5u);
}

TEST(Saturating, AddOverflowBoundaries) {
  // The exact edge: a + b == 2^64 - 1 is representable, one more saturates.
  EXPECT_EQ(sat_add(kSaturated - 5, 5), kSaturated);
  EXPECT_EQ(sat_add(kSaturated - 5, 4), kSaturated - 1);
  EXPECT_EQ(sat_add(kSaturated - 5, 6), kSaturated);
  EXPECT_EQ(sat_add(0, kSaturated), kSaturated);
  EXPECT_EQ(sat_add(0, 0), 0u);
  // Commutative at the boundary.
  EXPECT_EQ(sat_add(1, kSaturated), sat_add(kSaturated, 1));
}

TEST(Saturating, MulOverflowBoundaries) {
  // 2^32 * (2^32 - 1) < 2^64 <= 2^32 * 2^32.
  const std::uint64_t b32 = std::uint64_t{1} << 32;
  EXPECT_EQ(sat_mul(b32, b32 - 1), b32 * (b32 - 1));
  EXPECT_EQ(sat_mul(b32, b32), kSaturated);
  EXPECT_EQ(sat_mul(kSaturated, 1), kSaturated);
  EXPECT_EQ(sat_mul(1, kSaturated), kSaturated);
  EXPECT_EQ(sat_mul(kSaturated, 0), 0u);
  // Largest exact product of the form p * q with p = 2: (2^63 - 1) * 2.
  EXPECT_EQ(sat_mul(2, (std::uint64_t{1} << 63) - 1), kSaturated - 1);
  EXPECT_EQ(sat_mul(2, std::uint64_t{1} << 63), kSaturated);
}

TEST(Saturating, PowOverflowBoundaries) {
  // 2^63 exact, 2^64 saturates; also the paper's tower s_3 = 256^256.
  EXPECT_EQ(sat_pow(2, 63), std::uint64_t{1} << 63);
  EXPECT_EQ(sat_pow(2, 64), kSaturated);
  EXPECT_EQ(sat_pow(2, 10000), kSaturated);
  EXPECT_EQ(sat_pow(kSaturated, 1), kSaturated);
  EXPECT_EQ(sat_pow(kSaturated, 0), 1u);
  EXPECT_EQ(sat_pow(3, 40), 12157665459056928801ull);  // 3^40 < 2^64
  EXPECT_EQ(sat_pow(3, 41), kSaturated);
  // Saturation is sticky: once the base clamps, the result stays clamped.
  EXPECT_EQ(sat_pow(sat_pow(256, 256), 2), kSaturated);
}

TEST(Saturating, LogBoundaries) {
  EXPECT_EQ(floor_log2(0), 0u);
  EXPECT_EQ(floor_log2(kSaturated), 63u);
  EXPECT_EQ(ceil_log2(0), 0u);
  EXPECT_EQ(ceil_log2(kSaturated), 64u);
  EXPECT_EQ(ceil_log2((std::uint64_t{1} << 63) + 1), 64u);
  EXPECT_EQ(log_star(0), 0u);
  EXPECT_EQ(log_star(kSaturated), 5u);
}

TEST(Fibonacci, Values) {
  EXPECT_EQ(fibonacci(0), 0u);
  EXPECT_EQ(fibonacci(1), 1u);
  EXPECT_EQ(fibonacci(2), 1u);
  EXPECT_EQ(fibonacci(10), 55u);
  EXPECT_EQ(fibonacci(92), 7540113804746346429ull);
  EXPECT_THROW(static_cast<void>(fibonacci(93)), std::out_of_range);
}

TEST(Fibonacci, GoldenRatioIdentity) {
  // phi * F_k + 1 > F_{k+1}, the only Fibonacci property Section 4 uses.
  for (unsigned k = 1; k <= 40; ++k) {
    EXPECT_GT(kGoldenRatio * static_cast<double>(fibonacci(k)) + 1.0,
              static_cast<double>(fibonacci(k + 1)))
        << "k=" << k;
  }
}

TEST(Fibonacci, FloorLogPhi) {
  EXPECT_EQ(floor_log_phi(1.0), 0u);
  EXPECT_EQ(floor_log_phi(kGoldenRatio), 1u);
  EXPECT_EQ(floor_log_phi(10.0), 4u);  // phi^4 ~ 6.85, phi^5 ~ 11.09
}

TEST(Stats, RunningBasics) {
  RunningStats s;
  for (const double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Stats, MergeMatchesCombined) {
  RunningStats a, b, all;
  for (int i = 0; i < 10; ++i) {
    a.add(i);
    all.add(i);
  }
  for (int i = 10; i < 25; ++i) {
    b.add(i * 1.5);
    all.add(i * 1.5);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Stats, Percentile) {
  std::vector<double> v{5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
}

TEST(Stats, MeanOf) {
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(mean_of({2.0, 4.0}), 3.0);
}

TEST(Table, RendersAlignedRows) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(42);
  t.row().cell("b").cell(3.14159, 2);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("3.14"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(Table, AllCellOverloadsRender) {
  Table t({"i64", "u64", "int", "uint", "cstr", "dbl"});
  t.row()
      .cell(std::int64_t{-5})
      .cell(std::uint64_t{18446744073709551615ull})
      .cell(-7)
      .cell(9u)
      .cell("raw")
      .cell(0.125, 3);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("-5"), std::string::npos);
  EXPECT_NE(out.find("18446744073709551615"), std::string::npos);
  EXPECT_NE(out.find("-7"), std::string::npos);
  EXPECT_NE(out.find("raw"), std::string::npos);
  EXPECT_NE(out.find("0.125"), std::string::npos);
}

TEST(Table, ColumnsPadToWidestCell) {
  Table t({"x"});
  t.row().cell("short");
  t.row().cell("a-much-longer-cell");
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  // Every data row is rendered at equal width: the short cell's row must be
  // padded out to the long cell's width.
  std::istringstream lines(out);
  std::string first, line;
  std::size_t width = 0;
  while (std::getline(lines, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width) << "misaligned row: " << line;
  }
}

TEST(Table, FormatDoublePrecision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(1.0, 3), "1.000");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace ultra::util
