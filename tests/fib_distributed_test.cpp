#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "check/certify.h"
#include "core/ball_broadcast.h"
#include "core/fib_distortion.h"
#include "core/fibonacci.h"
#include "core/fibonacci_distributed.h"
#include "graph/bfs.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "spanner/evaluate.h"
#include "util/rng.h"
#include "util/saturating.h"

namespace ultra::core {
namespace {

using graph::Graph;
using graph::VertexId;

TEST(BallBroadcast, UnboundedMatchesBfsBalls) {
  util::Rng rng(3);
  const Graph g = graph::connected_gnm(150, 450, rng);
  std::vector<std::uint8_t> sources(g.num_vertices(), 0);
  std::vector<VertexId> src_list;
  for (VertexId v = 0; v < g.num_vertices(); v += 17) {
    sources[v] = 1;
    src_list.push_back(v);
  }
  const std::uint32_t radius = 4;
  sim::Network net(g, sim::kUnboundedMessages);
  sim::BallBroadcast bc(sources, radius);
  net.run(bc, radius + 4);
  EXPECT_TRUE(bc.ceased().empty());
  for (const VertexId s : src_list) {
    const auto dist = graph::bfs_distances(g, s, radius);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      const auto it = bc.known()[v].find(s);
      if (dist[v] == graph::kUnreachable) {
        EXPECT_EQ(it, bc.known()[v].end()) << "v=" << v << " s=" << s;
      } else {
        ASSERT_NE(it, bc.known()[v].end()) << "v=" << v << " s=" << s;
        EXPECT_EQ(it->second.dist, dist[v]);
      }
    }
  }
}

TEST(BallBroadcast, ParentPointersTraceShortestPaths) {
  util::Rng rng(5);
  const Graph g = graph::connected_gnm(120, 360, rng);
  std::vector<std::uint8_t> sources(g.num_vertices(), 0);
  sources[7] = 1;
  sim::Network net(g, sim::kUnboundedMessages);
  sim::BallBroadcast bc(sources, 5);
  net.run(bc, 16);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto it = bc.known()[v].find(7);
    if (it == bc.known()[v].end() || v == 7) continue;
    // Walk to the source in exactly dist steps.
    VertexId cur = v;
    std::uint32_t steps = 0;
    while (cur != 7) {
      const auto cit = bc.known()[cur].find(7);
      ASSERT_NE(cit, bc.known()[cur].end());
      cur = cit->second.parent;
      ++steps;
      ASSERT_LE(steps, 5u);
    }
    EXPECT_EQ(steps, it->second.dist);
  }
}

TEST(BallBroadcast, TinyCapForcesCessation) {
  // A star center adjacent to many sources must relay all of them at once;
  // with cap 2 it has to cease.
  const Graph g = graph::complete_bipartite(1, 10);
  std::vector<std::uint8_t> sources(g.num_vertices(), 0);
  for (VertexId v = 1; v <= 10; ++v) sources[v] = 1;
  sim::Network net(g, 2);
  sim::BallBroadcast bc(sources, 3);
  net.run(bc, 8);
  ASSERT_EQ(bc.ceased().size(), 1u);
  EXPECT_EQ(bc.ceased()[0].first, 0u);
  // The center still *knows* all sources (receiving is passive).
  EXPECT_EQ(bc.known()[0].size(), 10u);
}

TEST(BallBroadcast, MessagesNeverExceedCap) {
  util::Rng rng(9);
  const Graph g = graph::erdos_renyi_gnm(200, 1000, rng);
  std::vector<std::uint8_t> sources(g.num_vertices(), 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (rng.bernoulli(0.1)) sources[v] = 1;
  }
  sim::Network net(g, 5);
  sim::BallBroadcast bc(sources, 6);
  const auto m = net.run(bc, 12);  // Network throws if the cap is violated
  EXPECT_LE(m.max_message_words, 5u);
}

struct FibDistCase {
  VertexId n;
  std::uint64_t m;
  unsigned order;
  std::uint32_t ell;
  double t;  // 0 = unbounded
  std::uint64_t seed;
};

class FibDistributedProperty : public ::testing::TestWithParam<FibDistCase> {
};

TEST_P(FibDistributedProperty, SpannerInvariantsHold) {
  const FibDistCase c = GetParam();
  util::Rng rng(c.seed);
  const Graph g = graph::connected_gnm(c.n, c.m, rng);
  const FibonacciParams params{.order = c.order, .eps = 1.0, .ell = c.ell,
                               .message_t = c.t, .seed = c.seed};
  const auto result = build_fibonacci_distributed(g, params);

  EXPECT_TRUE(graph::same_connectivity(g, result.spanner.to_graph()));
  EXPECT_GT(result.network.rounds, 0u);
  if (result.message_cap_words != sim::kUnboundedMessages) {
    EXPECT_LE(result.network.max_message_words, result.message_cap_words);
  }

  // With no cessations the Theorem 7 bound must hold pairwise; with
  // cessations the Las Vegas repair restores it.
  const auto report = spanner::evaluate_sampled(g, result.spanner, 15, rng);
  EXPECT_TRUE(report.connectivity_preserved);
  const auto& lv = result.levels;
  for (std::size_t d = 1; d < report.by_distance.size(); ++d) {
    if (report.by_distance[d].pairs == 0) continue;
    EXPECT_LE(d + report.by_distance[d].max_add,
              fib_pair_bound(lv.ell, lv.order, d))
        << "d=" << d;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, FibDistributedProperty,
    ::testing::Values(FibDistCase{400, 2400, 2, 6, 0.0, 1},
                      FibDistCase{400, 2400, 2, 6, 2.0, 2},
                      FibDistCase{600, 3600, 3, 8, 0.0, 3},
                      FibDistCase{600, 3600, 2, 8, 2.5, 4},
                      FibDistCase{300, 1500, 2, 5, 4.0, 5}),
    [](const ::testing::TestParamInfo<FibDistCase>& info) {
      std::string name = "n";
      name += std::to_string(info.param.n);
      name += "_o";
      name += std::to_string(info.param.order);
      name += "_t";
      name += std::to_string(static_cast<int>(info.param.t * 10));
      name += "_s";
      name += std::to_string(info.param.seed);
      return name;
    });

TEST(FibDistributed, UnboundedMatchesSequentialClosely) {
  util::Rng rng(31);
  const Graph g = graph::connected_gnm(800, 4800, rng);
  const FibonacciParams params{.order = 2, .eps = 1.0, .ell = 6,
                               .message_t = 0.0, .seed = 11};
  const auto dist = build_fibonacci_distributed(g, params);
  const auto seq = build_fibonacci(g, params);
  // Same levels (same seed drives the same sampling), same construction
  // logic; sizes match up to path tie-breaking.
  const double ratio = static_cast<double>(dist.spanner.size()) /
                       static_cast<double>(seq.stats.spanner_size);
  EXPECT_GT(ratio, 0.9);
  EXPECT_LT(ratio, 1.1);
  EXPECT_EQ(dist.stats.ceased_nodes, 0u);
}

TEST(FibDistributed, CessationTriggersRepairAndPreservesConnectivity) {
  util::Rng rng(33);
  const Graph g = graph::connected_gnm(300, 2400, rng);
  FibonacciParams params{.order = 2, .eps = 1.0, .ell = 5,
                         .message_t = 0.0, .seed = 13};
  params.message_cap_override = 2;  // brutally small: force cessation
  const auto result = build_fibonacci_distributed(g, params);
  EXPECT_GT(result.stats.ceased_nodes, 0u);
  EXPECT_TRUE(graph::same_connectivity(g, result.spanner.to_graph()));
}

TEST(FibDistributed, AnalyzedCapAvoidsCessation) {
  // Cap at the analyzed threshold 4 (q_i / q_{i+1}) ln n: the protocol
  // should complete without any node ceasing, w.h.p.
  util::Rng rng(35);
  const Graph g = graph::connected_gnm(600, 3000, rng);
  FibonacciParams params{.order = 2, .eps = 1.0, .ell = 6,
                         .message_t = 0.0, .seed = 17};
  const auto lv = FibonacciLevels::plan(600, params);
  double worst_ratio = 1.0;
  for (unsigned i = 1; i <= lv.order; ++i) {
    const double qnext = i + 1 <= lv.order ? lv.q[i + 1] : 1.0 / 600.0;
    worst_ratio = std::max(worst_ratio, lv.q[i] / qnext);
  }
  params.message_cap_override = static_cast<std::uint64_t>(
      std::ceil(4.0 * worst_ratio * std::log(600.0)));
  const auto result = build_fibonacci_distributed(g, params);
  EXPECT_EQ(result.stats.ceased_nodes, 0u);
}

TEST(FibDistributed, RoundAccountingPositiveAndComposed) {
  util::Rng rng(37);
  const Graph g = graph::connected_gnm(400, 2000, rng);
  const FibonacciParams params{.order = 2, .eps = 1.0, .ell = 5,
                               .message_t = 0.0, .seed = 19};
  const auto r = build_fibonacci_distributed(g, params);
  EXPECT_EQ(r.network.rounds, r.stats.stage1_rounds + r.stats.stage2_rounds +
                                  r.stats.marking_rounds +
                                  r.stats.repair_rounds);
}

TEST(FibonacciDistributed, ExactSpannerCertificate) {
  // Same linearization of the Theorem 7 bound as the sequential suite, now
  // over the distributed construction (CONGEST-capped messages).
  util::Rng rng(29);
  const Graph g = graph::connected_gnm(250, 1000, rng);
  const FibonacciParams params{
      .order = 2, .eps = 1.0, .ell = 6, .message_t = 3.0, .seed = 11};
  const auto result = build_fibonacci_distributed(g, params);
  const auto& lv = result.levels;
  double alpha = 1.0;
  for (std::uint64_t d = 1; d <= g.num_vertices(); ++d) {
    const std::uint64_t bound = fib_pair_bound(lv.ell, lv.order, d);
    ASSERT_NE(bound, util::kSaturated) << "d=" << d;
    alpha = std::max(alpha,
                     static_cast<double>(bound) / static_cast<double>(d));
  }
  check::SpannerCertifyOptions opts;
  opts.alpha = alpha;
  opts.sample_sources = 0;
  const auto cert = check::certify_spanner(g, result.spanner, opts);
  EXPECT_TRUE(cert.ok) << cert.violation;
}

}  // namespace
}  // namespace ultra::core
