#include <gtest/gtest.h>

#include "graph/contraction.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace ultra::graph {
namespace {

TEST(Contract, BasicQuotient) {
  // Square 0-1-2-3; contract {0,1} and {2,3}.
  const Graph g =
      Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  const std::vector<std::uint32_t> part{0, 0, 1, 1};
  const ContractedGraph q = contract(g, part, 2);
  EXPECT_EQ(q.graph.num_vertices(), 2u);
  EXPECT_EQ(q.graph.num_edges(), 1u);  // parallel (1,2) and (3,0) merge
  const Edge rep = q.representative_of(0, 1);
  // Representative must be one of the two crossing edges.
  EXPECT_TRUE((rep == Edge{1, 2}) || (rep == Edge{0, 3}));
}

TEST(Contract, DroppedVerticesVanish) {
  const Graph g = Graph::from_edges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  const std::vector<std::uint32_t> part{0, 0, kDroppedVertex, 1, 1};
  const ContractedGraph q = contract(g, part, 2);
  EXPECT_EQ(q.graph.num_vertices(), 2u);
  EXPECT_EQ(q.graph.num_edges(), 0u);  // only connections were through 2
}

TEST(Contract, ChainedRepresentativesPointToOriginal) {
  // Path 0-1-2-3-4-5; contract pairs, then contract again.
  const Graph g =
      Graph::from_edges(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}});
  const std::vector<std::uint32_t> part1{0, 0, 1, 1, 2, 2};
  const ContractedGraph q1 = contract(g, part1, 3);
  EXPECT_EQ(q1.graph.num_edges(), 2u);
  EXPECT_EQ(q1.representative_of(0, 1), (Edge{1, 2}));
  EXPECT_EQ(q1.representative_of(1, 2), (Edge{3, 4}));

  const std::vector<std::uint32_t> part2{0, 0, 1};
  const ContractedGraph q2 =
      contract(q1.graph, part2, 2, q1.representative);
  EXPECT_EQ(q2.graph.num_edges(), 1u);
  // The representative of the quotient-of-quotient edge is an edge of the
  // ORIGINAL path, namely (3,4).
  EXPECT_EQ(q2.representative_of(0, 1), (Edge{3, 4}));
}

TEST(Contract, SelfLoopsDiscarded) {
  const Graph g = Graph::from_edges(3, {{0, 1}, {1, 2}, {2, 0}});
  const std::vector<std::uint32_t> part{0, 0, 1};
  const ContractedGraph q = contract(g, part, 2);
  EXPECT_EQ(q.graph.num_edges(), 1u);  // (0,1) became a loop
}

TEST(Contract, SizeMismatchThrows) {
  const Graph g = Graph::from_edges(3, {{0, 1}});
  const std::vector<std::uint32_t> part{0, 0};
  EXPECT_THROW(contract(g, part, 1), std::invalid_argument);
}

TEST(Contract, RepresentativesAreOriginalEdges) {
  util::Rng rng(12);
  const Graph g = erdos_renyi_gnm(60, 150, rng);
  std::vector<std::uint32_t> part(60);
  for (auto& x : part) x = static_cast<std::uint32_t>(rng.next_below(8));
  const ContractedGraph q = contract(g, part, 8);
  ASSERT_EQ(q.representative.size(), q.graph.num_edges());
  for (std::size_t i = 0; i < q.representative.size(); ++i) {
    const Edge orig = q.representative[i];
    EXPECT_TRUE(g.has_edge(orig.u, orig.v));
    const Edge qe = q.graph.edges()[i];
    // The original edge's endpoints are in the right parts.
    EXPECT_EQ(std::min(part[orig.u], part[orig.v]), qe.u);
    EXPECT_EQ(std::max(part[orig.u], part[orig.v]), qe.v);
  }
}

TEST(Contract, RepresentativeOfMissingEdgeThrows) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {2, 3}});
  const std::vector<std::uint32_t> part{0, 0, 1, 1};
  const ContractedGraph q = contract(g, part, 2);
  EXPECT_THROW(static_cast<void>(q.representative_of(0, 1)),
               std::invalid_argument);
}

}  // namespace
}  // namespace ultra::graph
