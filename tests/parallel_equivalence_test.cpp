// Randomized differential testing of ExecutionMode::kParallel.
//
// The parallel round executor is only allowed to change *wall-clock*: for
// every graph, protocol, audit mode and thread count, the delivered
// communication trace — trace_digest, rounds, messages, total words — must
// be byte-identical to ExecutionMode::kSequential. This harness drives that
// claim through ~200 seeded random cases: five graph families (Erdős–Rényi,
// star, path, disconnected, multi-block) crossed with the four protocol
// families (flood, Expand/Baswana–Sen, skeleton, Fibonacci), each compared
// against the sequential reference at 1, 2, 4 and 7 worker threads plus a
// kFast parallel run. It also re-asserts the golden digests pinned in
// digest_equivalence_test.cpp under kParallel, and checks that exceptions
// thrown inside worker shards propagate out of Network::run.
//
// Thread counts deliberately include 1 (pool-free parallel path), powers of
// two, and a prime (7) that does not divide typical worklist sizes, so shard
// boundaries land in the middle of rounds in many different ways.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "baselines/baswana_sen_distributed.h"
#include "core/fibonacci_distributed.h"
#include "core/skeleton_distributed.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "sim/flood.h"
#include "sim/network.h"
#include "util/rng.h"

namespace ultra {
namespace {

using graph::Graph;
using graph::VertexId;
using sim::AuditMode;
using sim::ExecutionMode;

constexpr unsigned kThreadCounts[] = {1, 2, 4, 7};

struct Trace {
  std::uint64_t digest = 0;
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t total_words = 0;

  explicit Trace(const sim::Metrics& m)
      : digest(m.trace_digest),
        rounds(m.rounds),
        messages(m.messages),
        total_words(m.total_words) {}

  friend bool operator==(const Trace&, const Trace&) = default;
};

#define EXPECT_TRACE_EQ(a, b, label)                        \
  do {                                                      \
    EXPECT_EQ((a).digest, (b).digest) << (label);           \
    EXPECT_EQ((a).rounds, (b).rounds) << (label);           \
    EXPECT_EQ((a).messages, (b).messages) << (label);       \
    EXPECT_EQ((a).total_words, (b).total_words) << (label); \
  } while (0)

enum class GraphKind { kErdosRenyi, kStar, kPath, kDisconnected, kMultiBlock };

constexpr GraphKind kGraphKinds[] = {
    GraphKind::kErdosRenyi, GraphKind::kStar, GraphKind::kPath,
    GraphKind::kDisconnected, GraphKind::kMultiBlock};

const char* kind_name(GraphKind kind) {
  switch (kind) {
    case GraphKind::kErdosRenyi: return "er";
    case GraphKind::kStar: return "star";
    case GraphKind::kPath: return "path";
    case GraphKind::kDisconnected: return "disconnected";
    case GraphKind::kMultiBlock: return "multiblock";
  }
  return "?";
}

// Sizes stay in the 60..130 range: big enough that round 0 (all n nodes) and
// the flood wavefronts clear the parallel-dispatch threshold at every tested
// thread count, small enough that 200 cases finish quickly under TSan.
Graph make_test_graph(GraphKind kind, std::uint64_t seed) {
  util::Rng rng(0x9a7a11e1u ^ (seed * 0x9e3779b97f4a7c15ull));
  switch (kind) {
    case GraphKind::kErdosRenyi: {
      const auto n = static_cast<VertexId>(80 + rng.next_below(50));
      const std::uint64_t m = 2 * n + rng.next_below(2 * n);
      return graph::connected_gnm(n, m, rng);
    }
    case GraphKind::kStar: {
      const auto leaves = static_cast<VertexId>(70 + rng.next_below(40));
      return graph::complete_bipartite(1, leaves);
    }
    case GraphKind::kPath: {
      return graph::path_graph(static_cast<VertexId>(70 + rng.next_below(50)));
    }
    case GraphKind::kDisconnected: {
      // Two independent G(n, m) blocks with no edge between them.
      graph::GraphBuilder b;
      VertexId offset = 0;
      for (int block = 0; block < 2; ++block) {
        const auto n = static_cast<VertexId>(35 + rng.next_below(25));
        const std::uint64_t m = 2 * n + rng.next_below(n);
        const Graph part = graph::connected_gnm(n, m, rng);
        for (const auto& e : part.edges()) {
          b.add_edge(offset + e.u, offset + e.v);
        }
        offset += n;
      }
      return std::move(b).build();
    }
    case GraphKind::kMultiBlock: {
      const auto cliques = static_cast<VertexId>(6 + rng.next_below(5));
      const auto size = static_cast<VertexId>(8 + rng.next_below(5));
      return seed % 2 == 0
                 ? graph::ring_of_cliques(cliques, size)
                 : graph::clique_chain(
                       cliques, size,
                       static_cast<std::uint32_t>(1 + rng.next_below(3)));
    }
  }
  return graph::path_graph(2);
}

// One protocol-family run under the given execution configuration. The
// protocol object is rebuilt per run: differential comparison must cover the
// whole construction, not a warm-started one.
enum class ProtocolKind { kFlood, kExpand, kSkeleton, kFibonacci };

constexpr ProtocolKind kProtocolKinds[] = {
    ProtocolKind::kFlood, ProtocolKind::kExpand, ProtocolKind::kSkeleton,
    ProtocolKind::kFibonacci};

const char* protocol_name(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kFlood: return "flood";
    case ProtocolKind::kExpand: return "expand";
    case ProtocolKind::kSkeleton: return "skeleton";
    case ProtocolKind::kFibonacci: return "fibonacci";
  }
  return "?";
}

Trace run_case(ProtocolKind kind, const Graph& g, std::uint64_t seed,
               AuditMode audit, ExecutionMode exec, unsigned threads) {
  switch (kind) {
    case ProtocolKind::kFlood: {
      // Alternate the two flood variants across seeds.
      if (seed % 2 == 0) {
        sim::Network net(g, 1, audit, exec, threads);
        sim::BfsFlood flood(static_cast<VertexId>(seed % 5));
        return Trace(net.run(flood, 4096));
      }
      util::Rng rng(seed);
      std::vector<std::uint8_t> is_source(g.num_vertices(), 0);
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        if (rng.bernoulli(0.08)) is_source[v] = 1;
      }
      is_source[0] = 1;  // at least one source even on unlucky draws
      sim::Network net(g, 1, audit, exec, threads);
      sim::TruncatedMinIdFlood flood(is_source, 4);
      return Trace(net.run(flood, 4096));
    }
    case ProtocolKind::kExpand:
      return Trace(
          baselines::baswana_sen_distributed(g, 3, seed, 8, audit, exec,
                                             threads)
              .network);
    case ProtocolKind::kSkeleton:
      return Trace(core::build_skeleton_distributed(
                       g, {.D = 4,
                           .eps = 1.0,
                           .seed = seed,
                           .audit = audit,
                           .exec = exec,
                           .exec_threads = threads})
                       .network);
    case ProtocolKind::kFibonacci: {
      core::FibonacciParams params;
      params.order = 2;
      params.eps = 1.0;
      params.message_t = 3.0;
      params.seed = seed;
      params.audit = audit;
      params.exec = exec;
      params.exec_threads = threads;
      return Trace(core::build_fibonacci_distributed(g, params).network);
    }
  }
  throw std::logic_error("unreachable");
}

class ParallelDifferential : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(ParallelDifferential, MatchesSequentialTraceExactly) {
  const ProtocolKind protocol = GetParam();
  // 10 seeds x 5 graph kinds x 4 protocol families = 200 cases overall.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    for (const GraphKind kind : kGraphKinds) {
      const Graph g = make_test_graph(kind, seed);
      const Trace want =
          run_case(protocol, g, seed, AuditMode::kStrict,
                   ExecutionMode::kSequential, 0);
      for (const unsigned threads : kThreadCounts) {
        const std::string label =
            std::string(protocol_name(protocol)) + "/" + kind_name(kind) +
            " seed=" + std::to_string(seed) +
            " threads=" + std::to_string(threads);
        const Trace strict = run_case(protocol, g, seed, AuditMode::kStrict,
                                      ExecutionMode::kParallel, threads);
        EXPECT_TRACE_EQ(want, strict, label + " strict");
      }
      // The fast auditor must not change the parallel trace either.
      const Trace fast = run_case(protocol, g, seed, AuditMode::kFast,
                                  ExecutionMode::kParallel, 4);
      EXPECT_TRACE_EQ(want, fast,
                      std::string(protocol_name(protocol)) + "/" +
                          kind_name(kind) + " seed=" + std::to_string(seed) +
                          " fast/4");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ParallelDifferential,
                         ::testing::ValuesIn(kProtocolKinds),
                         [](const auto& info) {
                           return std::string(protocol_name(info.param));
                         });

// --- Golden digests (from digest_equivalence_test.cpp) under kParallel ----

struct Golden {
  std::uint64_t digest, rounds, messages, total_words;
};

TEST(ParallelGoldenDigest, DistributedSkeleton) {
  util::Rng rng(41);
  const Graph g = graph::connected_gnm(250, 700, rng);
  const Golden want[] = {{9920093477882535019ull, 46, 8565, 26049},
                         {533071475084392225ull, 61, 9523, 28759}};
  const std::uint64_t seeds[] = {9, 10};
  for (int i = 0; i < 2; ++i) {
    const auto r = core::build_skeleton_distributed(
        g, {.D = 4,
            .eps = 1.0,
            .seed = seeds[i],
            .exec = ExecutionMode::kParallel,
            .exec_threads = 4});
    EXPECT_EQ(r.network.trace_digest, want[i].digest) << "seed " << seeds[i];
    EXPECT_EQ(r.network.rounds, want[i].rounds);
    EXPECT_EQ(r.network.messages, want[i].messages);
    EXPECT_EQ(r.network.total_words, want[i].total_words);
  }
}

TEST(ParallelGoldenDigest, DistributedFibonacci) {
  util::Rng rng(43);
  const Graph g = graph::connected_gnm(200, 520, rng);
  const Golden want[] = {{6356776267301215081ull, 283695, 6243, 13365},
                         {5328015492174695108ull, 1676, 7902, 11723}};
  const std::uint64_t seeds[] = {7, 8};
  for (int i = 0; i < 2; ++i) {
    core::FibonacciParams params;
    params.order = 2;
    params.eps = 1.0;
    params.message_t = 3.0;
    params.seed = seeds[i];
    params.exec = ExecutionMode::kParallel;
    params.exec_threads = 4;
    const auto r = core::build_fibonacci_distributed(g, params);
    EXPECT_EQ(r.network.trace_digest, want[i].digest) << "seed " << seeds[i];
    EXPECT_EQ(r.network.rounds, want[i].rounds);
    EXPECT_EQ(r.network.messages, want[i].messages);
    EXPECT_EQ(r.network.total_words, want[i].total_words);
  }
}

TEST(ParallelGoldenDigest, BfsFlood) {
  const Golden want[] = {{9123858175633504614ull, 6, 703, 703},
                         {15268099023596930062ull, 6, 715, 715}};
  const std::uint64_t seeds[] = {31, 32};
  for (int i = 0; i < 2; ++i) {
    util::Rng rng(seeds[i]);
    const Graph g = graph::connected_gnm(120, 300, rng);
    sim::Network net(g, 1, AuditMode::kStrict, ExecutionMode::kParallel, 4);
    sim::BfsFlood flood(7);
    const auto m = net.run(flood, 1000);
    EXPECT_EQ(m.trace_digest, want[i].digest) << "seed " << seeds[i];
    EXPECT_EQ(m.rounds, want[i].rounds);
    EXPECT_EQ(m.messages, want[i].messages);
    EXPECT_EQ(m.total_words, want[i].total_words);
  }
}

TEST(ParallelGoldenDigest, TruncatedMinIdFlood) {
  const Golden want[] = {{5946328646144447975ull, 4, 619, 619},
                         {4898565372255727991ull, 4, 747, 747}};
  const std::uint64_t seeds[] = {33, 34};
  for (int i = 0; i < 2; ++i) {
    util::Rng rng(seeds[i]);
    const Graph g = graph::connected_gnm(150, 400, rng);
    std::vector<std::uint8_t> is_source(g.num_vertices(), 0);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (rng.bernoulli(0.05)) is_source[v] = 1;
    }
    sim::Network net(g, 1, AuditMode::kStrict, ExecutionMode::kParallel, 4);
    sim::TruncatedMinIdFlood flood(is_source, 3);
    const auto m = net.run(flood, 10);
    EXPECT_EQ(m.trace_digest, want[i].digest) << "seed " << seeds[i];
    EXPECT_EQ(m.rounds, want[i].rounds);
    EXPECT_EQ(m.messages, want[i].messages);
    EXPECT_EQ(m.total_words, want[i].total_words);
  }
}

// --- Executor plumbing edge cases -----------------------------------------

// An exception thrown by a node running inside a worker shard must come out
// of Network::run on the simulator thread, not kill the process.
class OversizeEverywhere : public sim::Protocol {
 public:
  void begin(sim::Network&) override {}
  void on_round(sim::Mailbox& mb) override {
    const std::vector<sim::Word> huge(mb.message_cap() + 1, 7);
    if (!mb.neighbors().empty()) mb.send(mb.neighbors()[0], huge);
  }
  [[nodiscard]] bool done(const sim::Network& net) const override {
    return net.round() > 2;
  }
};

TEST(ParallelExecutor, WorkerExceptionPropagates) {
  const Graph g = graph::path_graph(96);
  sim::Network net(g, 2, AuditMode::kStrict, ExecutionMode::kParallel, 4);
  OversizeEverywhere p;
  EXPECT_THROW(net.run(p, 100), sim::MessageTooLong);
}

// A Network object stays reusable after a parallel run (fresh protocol, same
// pool): back-to-back runs must accumulate exactly the metrics a reused
// sequential Network accumulates. (Protocols may key off the absolute round
// counter, which keeps counting across runs, so the reference must be a
// reused Network too, not a fresh one.)
TEST(ParallelExecutor, NetworkReusableAcrossRuns) {
  util::Rng rng(77);
  const Graph g = graph::connected_gnm(100, 260, rng);
  sim::Network net(g, 1, AuditMode::kStrict, ExecutionMode::kParallel, 4);
  sim::Network ref(g, 1);
  EXPECT_EQ(net.worker_threads(), 4u);
  EXPECT_EQ(ref.worker_threads(), 1u);
  for (int run = 0; run < 2; ++run) {
    sim::BfsFlood a(3);
    sim::BfsFlood b(3);
    const auto got = net.run(a, 1000);
    const auto want = ref.run(b, 1000);
    EXPECT_EQ(got.trace_digest, want.trace_digest) << "run " << run;
    EXPECT_EQ(got.rounds, want.rounds) << "run " << run;
    EXPECT_EQ(got.messages, want.messages) << "run " << run;
    EXPECT_EQ(got.total_words, want.total_words) << "run " << run;
  }
}

TEST(ParallelExecutor, SequentialModeResolvesToOneLane) {
  const Graph g = graph::path_graph(4);
  sim::Network net(g, 1, AuditMode::kStrict, ExecutionMode::kSequential, 16);
  EXPECT_EQ(net.worker_threads(), 1u);
}

}  // namespace
}  // namespace ultra
