// Differential and golden tests for the query-serving layer:
//
//   - FlatOracleIndex answers bit-identically to the DistanceOracle it was
//     flattened from — value AND landmark attribution — on every pair.
//   - Differential stretch fuzz across >= 4 graph families x >= 8 seeds:
//     d(u,v) <= oracle.query(u,v) <= 3 d(u,v) against exact BFS, and
//     disconnected pairs answer graph::kUnreachable on both paths.
//   - The flattened image of the pinned workload reproduces a golden digest
//     (the serve-layer analogue of digest_equivalence_test's trace pins).
//   - The YCSB-style workload generator: stateless op(i), mix proportions,
//     zipfian skew, argument validation.
//   - The engine's checksum matches a hand-rolled sequential reference and
//     is invariant to batch size and shard regrouping.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <vector>

#include "apps/compact_routing.h"
#include "apps/distance_oracle.h"
#include "graph/bfs.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "serve/flat_index.h"
#include "serve/query_engine.h"
#include "serve/workload.h"
#include "util/rng.h"

namespace ultra::serve {
namespace {

using graph::Graph;
using graph::VertexId;

// The graph families the differential suite sweeps. `disconnected_union`
// deliberately produces multiple components so the kUnreachable contract is
// exercised, not just reachable stretch.
Graph make_family(int family, std::uint64_t seed) {
  util::Rng rng(seed);
  switch (family) {
    case 0:
      return graph::connected_gnm(160, 640, rng);
    case 1:
      return graph::random_regular(150, 4, rng);
    case 2:
      return graph::random_tree(170, rng);
    case 3:
      return graph::preferential_attachment(140, 3, rng);
    default: {
      // Two gnm islands plus isolated vertices: guaranteed disconnected.
      const Graph a = graph::connected_gnm(60, 180, rng);
      const Graph b = graph::connected_gnm(50, 140, rng);
      std::vector<graph::Edge> edges;
      for (const auto& e : a.edges()) edges.push_back(e);
      for (const auto& e : b.edges()) {
        edges.push_back({e.u + a.num_vertices(), e.v + a.num_vertices()});
      }
      return Graph::from_edges(a.num_vertices() + b.num_vertices() + 5, edges);
    }
  }
}

constexpr int kNumFamilies = 5;

TEST(FlatIndex, MatchesOracleOnEveryPairIncludingAttribution) {
  for (std::uint64_t seed : {3u, 11u}) {
    for (int family = 0; family < kNumFamilies; ++family) {
      const Graph g = make_family(family, seed);
      const apps::DistanceOracle oracle(g, seed);
      const FlatOracleIndex index(oracle);
      ASSERT_EQ(index.num_vertices(), g.num_vertices());
      for (VertexId u = 0; u < g.num_vertices(); u += 3) {
        for (VertexId v = 0; v < g.num_vertices(); ++v) {
          const apps::OracleAnswer want = oracle.query_traced(u, v);
          const apps::OracleAnswer got = index.query_traced(u, v);
          ASSERT_EQ(want, got)
              << "family " << family << " seed " << seed << " pair " << u
              << "->" << v << ": oracle (" << want.dist << ", via "
              << want.via << ") vs flat (" << got.dist << ", via " << got.via
              << ")";
        }
      }
    }
  }
}

TEST(FlatIndex, DifferentialStretchFuzz) {
  // >= 4 families x >= 8 seeds, exact BFS as ground truth. The oracle's
  // stretch-3 guarantee must hold pairwise, and disconnected pairs must
  // answer kUnreachable on both the oracle and the flattened index.
  for (int family = 0; family < kNumFamilies; ++family) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      const Graph g = make_family(family, seed);
      const apps::DistanceOracle oracle(g, seed);
      const FlatOracleIndex index(oracle);
      std::uint64_t unreachable_pairs = 0;
      for (VertexId u = 0; u < g.num_vertices(); u += 7) {
        const auto dist = graph::bfs_distances(g, u);
        for (VertexId v = 0; v < g.num_vertices(); ++v) {
          const std::uint32_t est = index.query(u, v);
          ASSERT_EQ(est, oracle.query(u, v));
          if (dist[v] == graph::kUnreachable) {
            ASSERT_EQ(est, graph::kUnreachable)
                << "family " << family << " seed " << seed << " pair " << u
                << "->" << v << " is disconnected but answered " << est;
            ++unreachable_pairs;
          } else {
            ASSERT_GE(est, dist[v]) << u << "->" << v;
            ASSERT_LE(est, 3 * dist[v])
                << "family " << family << " seed " << seed << " pair " << u
                << "->" << v << ": estimate " << est << " breaks stretch 3 "
                << "(exact " << dist[v] << ")";
          }
        }
      }
      if (family == 4) {
        EXPECT_GT(unreachable_pairs, 0u)
            << "the disconnected family must exercise kUnreachable";
      }
    }
  }
}

TEST(FlatIndex, ScanRowsMatchOracleBunches) {
  const Graph g = make_family(0, 23);
  const apps::DistanceOracle oracle(g, 23);
  const FlatOracleIndex index(oracle);
  std::uint64_t entries = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto want = oracle.bunch_sorted(v);
    const auto keys = index.bunch_keys(v);
    const auto dists = index.bunch_dists(v);
    ASSERT_EQ(keys.size(), want.size());
    ASSERT_EQ(dists.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(keys[i], want[i].first);
      EXPECT_EQ(dists[i], want[i].second);
      if (i > 0) {
        EXPECT_LT(keys[i - 1], keys[i]);  // strictly ascending row
      }
    }
    entries += want.size();
  }
  EXPECT_EQ(index.num_bunch_entries(), entries);
}

// Pinned fingerprint of the flattened image for one fixed (graph, seed) —
// the serve-layer analogue of digest_equivalence_test's golden trace pins.
// If an intentional change to landmark sampling, bunch construction or the
// flattened layout moves this value, re-pin it in the same commit and say
// why in the commit message.
struct Golden {
  static constexpr std::uint64_t kDigest = 3543939513983494149ull;
  static constexpr std::uint64_t kBunchEntries = 4875ull;
  static constexpr std::size_t kLandmarks = 16u;
};

TEST(FlatIndex, GoldenDigestPinned) {
  util::Rng rng(42);
  const Graph g = graph::connected_gnm(500, 2500, rng);
  const apps::DistanceOracle oracle(g, 42);
  const FlatOracleIndex index(oracle);
  EXPECT_EQ(index.digest(), Golden::kDigest);
  EXPECT_EQ(index.num_bunch_entries(), Golden::kBunchEntries);
  EXPECT_EQ(index.num_landmarks(), Golden::kLandmarks);
  // Rebuild from scratch: bit-identical image.
  const apps::DistanceOracle oracle2(g, 42);
  const FlatOracleIndex index2(oracle2);
  EXPECT_EQ(index2.digest(), index.digest());
}

TEST(Workload, OpIsPureInSeedAndIndex) {
  WorkloadSpec spec;
  spec.seed = 77;
  spec.point_pct = 70;
  spec.route_pct = 10;
  spec.scan_pct = 20;
  spec.dist = KeyDist::kZipfian;
  spec.theta = 0.9;
  const WorkloadGen a(spec, 1000);
  const WorkloadGen b(spec, 1000);
  // Query b in a scrambled order: op(i) must not depend on call history.
  for (std::uint64_t i = 0; i < 5000; ++i) {
    const std::uint64_t j = (i * 2654435761u) % 5000;
    const auto x = a.op(j);
    const auto y = b.op(j);
    EXPECT_EQ(static_cast<int>(x.type), static_cast<int>(y.type));
    EXPECT_EQ(x.u, y.u);
    EXPECT_EQ(x.v, y.v);
    EXPECT_LT(x.u, 1000u);
    EXPECT_LT(x.v, 1000u);
  }
  // A different seed decorrelates the stream.
  spec.seed = 78;
  const WorkloadGen c(spec, 1000);
  std::uint64_t same = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    same += (a.op(i).u == c.op(i).u);
  }
  EXPECT_LT(same, 100u);
}

TEST(Workload, MixProportionsRespected) {
  WorkloadSpec spec;
  spec.seed = 5;
  spec.point_pct = 60;
  spec.route_pct = 30;
  spec.scan_pct = 10;
  const WorkloadGen wl(spec, 500);
  std::uint64_t point = 0, route = 0, scan = 0;
  const std::uint64_t kOps = 100000;
  for (std::uint64_t i = 0; i < kOps; ++i) {
    switch (wl.op(i).type) {
      case OpType::kPoint: ++point; break;
      case OpType::kRoute: ++route; break;
      case OpType::kScan: ++scan; break;
    }
  }
  EXPECT_NEAR(static_cast<double>(point) / kOps, 0.60, 0.01);
  EXPECT_NEAR(static_cast<double>(route) / kOps, 0.30, 0.01);
  EXPECT_NEAR(static_cast<double>(scan) / kOps, 0.10, 0.01);
}

TEST(Workload, ZipfianSkewsUniformDoesNot) {
  WorkloadSpec spec;
  spec.seed = 9;
  spec.dist = KeyDist::kZipfian;
  spec.theta = 0.99;
  const WorkloadGen zipf(spec, 10000);
  spec.dist = KeyDist::kUniform;
  const WorkloadGen uni(spec, 10000);

  const std::uint64_t kOps = 50000;
  std::map<VertexId, std::uint64_t> zipf_freq, uni_freq;
  for (std::uint64_t i = 0; i < kOps; ++i) {
    ++zipf_freq[zipf.op(i).u];
    ++uni_freq[uni.op(i).u];
  }
  auto top_share = [&](const std::map<VertexId, std::uint64_t>& freq) {
    std::vector<std::uint64_t> counts;
    counts.reserve(freq.size());
    for (const auto& [k, c] : freq) counts.push_back(c);
    std::sort(counts.rbegin(), counts.rend());
    std::uint64_t top = 0;
    for (std::size_t i = 0; i < std::min<std::size_t>(10, counts.size()); ++i) {
      top += counts[i];
    }
    return static_cast<double>(top) / kOps;
  };
  // Zipf(0.99) over 10k keys: the 10 hottest keys carry a large share;
  // uniform spreads so thin the top 10 are noise.
  EXPECT_GT(top_share(zipf_freq), 0.15);
  EXPECT_LT(top_share(uni_freq), 0.01);
}

TEST(Workload, RejectsBadSpecs) {
  WorkloadSpec spec;
  spec.point_pct = 50;
  spec.route_pct = 10;
  spec.scan_pct = 10;  // sums to 70
  EXPECT_THROW(WorkloadGen(spec, 100), std::invalid_argument);
  spec.scan_pct = 40;
  spec.dist = KeyDist::kZipfian;
  spec.theta = 1.5;
  EXPECT_THROW(WorkloadGen(spec, 100), std::invalid_argument);
  spec.theta = 0.9;
  EXPECT_THROW(WorkloadGen(spec, 0), std::invalid_argument);
}

// Hand-rolled sequential reference implementing the documented checksum
// contract (per-op result words folded in op order per batch, batch digests
// chained in batch order) — pins the contract itself, not just engine
// self-consistency across configurations.
std::uint64_t reference_checksum(const FlatOracleIndex& index,
                                 const apps::CompactRouting* routing,
                                 const WorkloadGen& wl, std::uint64_t ops,
                                 std::uint32_t batch_ops) {
  constexpr std::uint64_t kOffset = 14695981039346656037ull;
  auto fold = [](std::uint64_t h, std::uint64_t w) {
    return (h ^ w) * 1099511628211ull;
  };
  auto op_word = [&](const WorkloadGen::Op& op) -> std::uint64_t {
    switch (op.type) {
      case OpType::kPoint: {
        const apps::OracleAnswer a = index.query_traced(op.u, op.v);
        return (static_cast<std::uint64_t>(a.via) << 32) | a.dist;
      }
      case OpType::kRoute: {
        const auto route = routing->route(op.u, op.v);
        std::uint64_t h = kOffset;
        for (const VertexId hop : route.path) h = fold(h, hop);
        return fold(h, route.delivered ? route.path.size() : 0);
      }
      case OpType::kScan: {
        const auto keys = index.bunch_keys(op.u);
        const auto dists = index.bunch_dists(op.u);
        std::uint64_t h = kOffset;
        for (std::size_t k = 0; k < keys.size(); ++k) {
          h = fold(h, (static_cast<std::uint64_t>(keys[k]) << 32) | dists[k]);
        }
        return fold(h, keys.size());
      }
    }
    return 0;
  };
  const std::uint64_t batches = (ops + batch_ops - 1) / batch_ops;
  std::uint64_t h = kOffset;
  h = fold(h, ops);
  for (std::uint64_t b = 0; b < batches; ++b) {
    const std::uint64_t first = b * batch_ops;
    const std::uint64_t count = std::min<std::uint64_t>(batch_ops, ops - first);
    std::uint64_t bh = kOffset;
    for (std::uint64_t j = 0; j < count; ++j) {
      bh = fold(bh, first + j);
      bh = fold(bh, op_word(wl.op(first + j)));
    }
    h = fold(h, 0x6d65726765ull);
    h = fold(h, bh);
  }
  return h;
}

TEST(QueryEngine, ChecksumMatchesSequentialReference) {
  const Graph g = make_family(0, 31);
  const apps::DistanceOracle oracle(g, 31);
  const FlatOracleIndex index(oracle);
  const apps::CompactRouting routing(g, 31);

  WorkloadSpec spec;
  spec.seed = 31;
  spec.point_pct = 70;
  spec.route_pct = 15;
  spec.scan_pct = 15;
  spec.dist = KeyDist::kZipfian;
  spec.theta = 0.8;
  const WorkloadGen wl(spec, g.num_vertices());
  const std::uint64_t kOps = 7000;

  for (std::uint32_t batch : {64u, 1000u, 8192u}) {
    const std::uint64_t want =
        reference_checksum(index, &routing, wl, kOps, batch);
    for (bool shard : {false, true}) {
      EngineOptions opt;
      opt.threads = 1;
      opt.batch_ops = batch;
      opt.shard_batches = shard;
      QueryEngine engine(index, &routing, opt);
      const ServeResult res = engine.run(wl, kOps);
      EXPECT_EQ(res.checksum, want)
          << "batch " << batch << " shard " << shard;
      EXPECT_EQ(res.ops, kOps);
      EXPECT_EQ(res.point_ops + res.route_ops + res.scan_ops, kOps);
    }
  }
}

TEST(QueryEngine, RejectsRouteMixWithoutRoutingTables) {
  const Graph g = make_family(2, 13);
  const apps::DistanceOracle oracle(g, 13);
  const FlatOracleIndex index(oracle);
  WorkloadSpec spec;
  spec.point_pct = 80;
  spec.route_pct = 10;
  spec.scan_pct = 10;
  const WorkloadGen wl(spec, g.num_vertices());
  QueryEngine engine(index, nullptr);
  EXPECT_THROW(engine.run(wl, 100), std::invalid_argument);
  // And a key-universe mismatch is caught too.
  const WorkloadGen small(WorkloadSpec{}, 10);
  EXPECT_THROW(engine.run(small, 100), std::invalid_argument);
}

TEST(QueryEngine, CountersAndUnreachableAreExact) {
  // On the deliberately disconnected family, cross-island point queries
  // must show up in the unreachable counter.
  const Graph g = make_family(4, 3);
  const apps::DistanceOracle oracle(g, 3);
  const FlatOracleIndex index(oracle);
  WorkloadSpec spec;
  spec.seed = 3;
  spec.point_pct = 100;
  spec.route_pct = 0;
  spec.scan_pct = 0;
  const WorkloadGen wl(spec, g.num_vertices());
  QueryEngine engine(index, nullptr);
  const std::uint64_t kOps = 4000;
  const ServeResult res = engine.run(wl, kOps);
  std::uint64_t want_unreachable = 0;
  for (std::uint64_t i = 0; i < kOps; ++i) {
    const auto op = wl.op(i);
    want_unreachable += index.query(op.u, op.v) == graph::kUnreachable;
  }
  EXPECT_EQ(res.point_ops, kOps);
  EXPECT_EQ(res.unreachable, want_unreachable);
  EXPECT_GT(res.unreachable, 0u);
}

// Deterministic fake clock: latency sampling must not disturb the checksum,
// and the sample count must follow sample_every exactly.
class FakeTicks : public TickSource {
 public:
  std::uint64_t now_ns() override {
    return t_.fetch_add(7, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> t_{0};
};

TEST(QueryEngine, LatencySamplingIsChecksumInvisible) {
  const Graph g = make_family(1, 17);
  const apps::DistanceOracle oracle(g, 17);
  const FlatOracleIndex index(oracle);
  WorkloadSpec spec;
  spec.seed = 17;
  const WorkloadGen wl(spec, g.num_vertices());
  const std::uint64_t kOps = 3000;

  EngineOptions opt;
  opt.sample_every = 10;
  QueryEngine engine(index, nullptr, opt);
  const ServeResult plain = engine.run(wl, kOps);
  EXPECT_TRUE(plain.latencies_ns.empty());

  FakeTicks ticks;
  const ServeResult sampled = engine.run(wl, kOps, &ticks);
  EXPECT_EQ(sampled.checksum, plain.checksum);
  EXPECT_EQ(sampled.latencies_ns.size(), (kOps + 9) / 10);
}

}  // namespace
}  // namespace ultra::serve
