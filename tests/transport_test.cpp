// Edge cases of the flat-buffer transport: arena lifetime, CSR inbox
// construction, worklist activation, per-arc dedup, cap enforcement — the
// corners that a vector-of-vectors transport got right for free and the
// rewrite must get right on purpose.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "sim/network.h"

namespace ultra {
namespace {

using graph::Graph;
using graph::VertexId;
using sim::AuditMode;
using sim::Mailbox;
using sim::MessageView;
using sim::Network;
using sim::Word;

// A K_{1,d} star with center 0 — every leaf shares the one interior node, so
// the center's inbox exercises the densest CSR slice the graph allows.
Graph star(VertexId leaves) {
  std::vector<graph::Edge> edges;
  for (VertexId i = 1; i <= leaves; ++i) edges.push_back({0, i});
  return Graph::from_edges(leaves + 1, std::move(edges));
}

Graph path3() { return Graph::from_edges(3, {{0, 1}, {1, 2}}); }

// Scriptable single-purpose protocol: runs a callback per activation and
// stops after a fixed number of rounds.
class Script : public sim::Protocol {
 public:
  using Fn = std::function<void(Mailbox&)>;
  Script(std::uint64_t rounds, Fn fn) : rounds_(rounds), fn_(std::move(fn)) {}
  void begin(Network&) override {}
  void on_round(Mailbox& mb) override {
    if (mb.round() < rounds_) mb.stay_awake();
    fn_(mb);
  }
  [[nodiscard]] bool done(const Network& net) const override {
    return net.round() >= rounds_ && !net.has_pending_messages();
  }

 private:
  std::uint64_t rounds_;
  Fn fn_;
};

TEST(Transport, StarCenterReceivesFromAllNeighborsSortedWithCorrectPayloads) {
  for (AuditMode mode : {AuditMode::kStrict, AuditMode::kFast}) {
    const Graph g = star(64);
    Network net(g, 1, mode);
    std::vector<VertexId> senders;
    std::vector<Word> words;
    Script p(2, [&](Mailbox& mb) {
      if (mb.round() == 0 && mb.self() != 0) {
        mb.send(0, Word{1000 + mb.self()});
      }
      if (mb.round() == 1 && mb.self() == 0) {
        for (const MessageView& m : mb.inbox()) {
          senders.push_back(m.from);
          ASSERT_EQ(m.payload.size(), 1u);
          words.push_back(m.payload[0]);
        }
      }
    });
    const auto met = net.run(p, 10);
    ASSERT_EQ(senders.size(), 64u);
    for (VertexId i = 0; i < 64; ++i) {
      EXPECT_EQ(senders[i], i + 1);            // sorted by sender id
      EXPECT_EQ(words[i], 1000u + (i + 1));    // each view intact, distinct
    }
    EXPECT_EQ(met.messages, 64u);
    EXPECT_EQ(met.total_words, 64u);
    EXPECT_EQ(met.max_message_words, 1u);
  }
}

TEST(Transport, ZeroLengthPayloadsDeliverAndDigestStably) {
  auto run = [](AuditMode mode) {
    const Graph g = path3();
    Network net(g, 1, mode);
    std::uint64_t delivered = 0;
    std::uint64_t payload_words = 0;
    Script p(2, [&](Mailbox& mb) {
      if (mb.round() == 0) mb.send_all(std::span<const Word>{});
      for (const MessageView& m : mb.inbox()) {
        ++delivered;
        payload_words += m.payload.size();
        EXPECT_TRUE(m.payload.empty());
      }
    });
    const auto met = net.run(p, 10);
    EXPECT_EQ(delivered, 4u);  // 0->1, 1->0, 1->2, 2->1
    EXPECT_EQ(payload_words, 0u);
    EXPECT_EQ(met.messages, 4u);
    EXPECT_EQ(met.total_words, 0u);
    EXPECT_EQ(met.max_message_words, 0u);
    return met.trace_digest;
  };
  EXPECT_EQ(run(AuditMode::kStrict), run(AuditMode::kFast));
}

TEST(Transport, BroadcastSharesOnePayloadAcrossNeighbors) {
  const Graph g = star(8);
  Network net(g, 4);
  std::uint64_t seen = 0;
  Script p(2, [&](Mailbox& mb) {
    if (mb.round() == 0 && mb.self() == 0) mb.send_all({7, 8, 9});
    for (const MessageView& m : mb.inbox()) {
      ++seen;
      ASSERT_EQ(m.payload.size(), 3u);
      EXPECT_EQ(m.payload[0], 7u);
      EXPECT_EQ(m.payload[1], 8u);
      EXPECT_EQ(m.payload[2], 9u);
    }
  });
  const auto met = net.run(p, 10);
  EXPECT_EQ(seen, 8u);
  // Accounting charges the model cost (per edge-message), not arena bytes.
  EXPECT_EQ(met.messages, 8u);
  EXPECT_EQ(met.total_words, 24u);
}

TEST(Transport, MessageTooLongAtExactCapBoundary) {
  for (AuditMode mode : {AuditMode::kStrict, AuditMode::kFast}) {
    const Graph g = path3();
    Network net(g, 2, mode);
    Script ok(1, [&](Mailbox& mb) {
      if (mb.round() == 0 && mb.self() == 0) mb.send(1, {1, 2});  // == cap
    });
    EXPECT_NO_THROW(net.run(ok, 10));

    Network net2(g, 2, mode);
    Script over(1, [&](Mailbox& mb) {
      if (mb.round() == 0 && mb.self() == 0) mb.send(1, {1, 2, 3});
    });
    EXPECT_THROW(net2.run(over, 10), sim::MessageTooLong);

    Network net3(g, 2, mode);
    Script over_bcast(1, [&](Mailbox& mb) {
      if (mb.round() == 0 && mb.self() == 1) mb.send_all({1, 2, 3});
    });
    EXPECT_THROW(net3.run(over_bcast, 10), sim::MessageTooLong);
  }
}

TEST(Transport, BroadcastToZeroNeighborsIsFreeEvenOverCap) {
  // Historical behavior kept by the rewrite: send_all on an isolated vertex
  // is a no-op before any cap check, so an oversized payload does not throw.
  const Graph g = Graph::from_edges(3, {{0, 1}});  // vertex 2 isolated
  Network net(g, 1);
  Script p(1, [&](Mailbox& mb) {
    if (mb.round() == 0 && mb.self() == 2) mb.send_all({1, 2, 3, 4});
  });
  const auto met = net.run(p, 10);
  EXPECT_EQ(met.messages, 0u);
}

TEST(Transport, SecondSendToSameNeighborSameRoundRejected) {
  const Graph g = path3();
  {
    Network net(g, 4);
    Script p(1, [&](Mailbox& mb) {
      if (mb.round() == 0 && mb.self() == 0) {
        mb.send(1, Word{1});
        mb.send(1, Word{2});  // same arc, same round
      }
    });
    EXPECT_THROW(net.run(p, 10), std::invalid_argument);
  }
  {
    // send + send_all overlapping the same arc must also be rejected.
    Network net(g, 4);
    Script p(1, [&](Mailbox& mb) {
      if (mb.round() == 0 && mb.self() == 1) {
        mb.send(0, Word{1});
        mb.send_all({Word{2}});
      }
    });
    EXPECT_THROW(net.run(p, 10), std::invalid_argument);
  }
  {
    // ...but the same arc is fresh again next round.
    Network net(g, 4);
    Script p(2, [&](Mailbox& mb) {
      if (mb.self() == 0 && mb.round() < 2) mb.send(1, Word{mb.round()});
    });
    const auto met = net.run(p, 10);
    EXPECT_EQ(met.messages, 2u);
  }
}

TEST(Transport, SendToNonNeighborOrOutOfRangeRejected) {
  const Graph g = path3();
  Network net(g, 4);
  Script non_nbr(1, [&](Mailbox& mb) {
    if (mb.round() == 0 && mb.self() == 0) mb.send(2, Word{1});
  });
  EXPECT_THROW(net.run(non_nbr, 10), std::invalid_argument);

  Network net2(g, 4);
  Script oob(1, [&](Mailbox& mb) {
    if (mb.round() == 0 && mb.self() == 0) mb.send(99, Word{1});
  });
  EXPECT_THROW(net2.run(oob, 10), std::invalid_argument);

  Network net3(g, 4);
  Script self_send(1, [&](Mailbox& mb) {
    if (mb.round() == 0 && mb.self() == 0) mb.send(0, Word{1});
  });
  EXPECT_THROW(net3.run(self_send, 10), std::invalid_argument);
}

TEST(Transport, Cap1CongestCarriesSingleWordsEndToEnd) {
  const Graph g = star(16);
  Network net(g, 1);
  std::uint64_t echoes = 0;
  Script p(3, [&](Mailbox& mb) {
    if (mb.round() == 0 && mb.self() == 0) mb.send_all({Word{42}});
    for (const MessageView& m : mb.inbox()) {
      if (mb.self() != 0) {
        EXPECT_EQ(m.payload.size(), 1u);
        mb.send(m.from, m.payload[0] + mb.self());
      } else {
        ++echoes;
        EXPECT_EQ(m.payload[0], 42u + m.from);
      }
    }
  });
  const auto met = net.run(p, 10);
  EXPECT_EQ(echoes, 16u);
  EXPECT_EQ(met.max_message_words, 1u);
}

TEST(Transport, HasPendingMessagesTracksDeliveredCount) {
  const Graph g = path3();
  Network net(g, 1);
  EXPECT_FALSE(net.has_pending_messages());
  std::vector<bool> observed;
  Script p(3, [&](Mailbox& mb) {
    if (mb.round() == 0 && mb.self() == 0) mb.send(1, Word{5});
    if (mb.self() == 0) observed.push_back(mb.round() != 0);
  });
  net.run(p, 10);
  // After the run drains, nothing is pending.
  EXPECT_FALSE(net.has_pending_messages());
}

TEST(Transport, WorklistWakesOnlyReceiversAndStayAwakeNodes) {
  // Node 2 goes silent after round 0; it must not be activated again until a
  // message reaches it. Node 0 stays awake and relays through 1.
  const Graph g = path3();
  Network net(g, 1);
  std::vector<std::pair<std::uint64_t, VertexId>> activations;
  class P : public sim::Protocol {
   public:
    explicit P(std::vector<std::pair<std::uint64_t, VertexId>>& log)
        : log_(log) {}
    void begin(Network&) override {}
    void on_round(Mailbox& mb) override {
      log_.emplace_back(mb.round(), mb.self());
      if (mb.self() == 0 && mb.round() == 2) mb.send(1, Word{1});
      if (mb.self() == 1) {
        for (const MessageView& m : mb.inbox()) {
          if (m.from == 0) mb.send(2, Word{2});
        }
      }
      if (mb.self() == 0 && mb.round() < 3) mb.stay_awake();
    }
    [[nodiscard]] bool done(const Network& net) const override {
      return net.round() >= 3 && !net.has_pending_messages();
    }

   private:
    std::vector<std::pair<std::uint64_t, VertexId>>& log_;
  } p(activations);
  net.run(p, 20);
  // Round 0: all nodes start awake. Rounds 1-2: only node 0 (stay_awake).
  // Round 3: node 1 (got mail). Round 4: node 2 (got mail).
  const std::vector<std::pair<std::uint64_t, VertexId>> want = {
      {0, 0}, {0, 1}, {0, 2}, {1, 0}, {2, 0}, {3, 0}, {3, 1}, {4, 2}};
  EXPECT_EQ(activations, want);
}

TEST(Transport, NetworkIsReusableAcrossRuns) {
  const Graph g = star(4);
  Network net(g, 1);
  // mb.round() is cumulative across runs on a reused Network, so the script
  // keys off a run-relative round.
  auto once = [&]() {
    const std::uint64_t base = net.round();
    Script p(base + 2, [&](Mailbox& mb) {
      if (mb.round() == base && mb.self() == 0) mb.send_all({Word{0}});
    });
    return net.run(p, 10);
  };
  const auto a = once();
  const auto b = once();
  // Metrics accumulate across runs on the same Network; the second run must
  // deliver the same number of fresh messages (no stale pending state).
  EXPECT_EQ(a.messages, 4u);
  EXPECT_EQ(b.messages - a.messages, 4u);
  EXPECT_FALSE(net.has_pending_messages());
}

// --- destination-shard aggregation edge cases -----------------------------
// kDestShardSize receivers share one coalescing buffer; star(5000) puts the
// center in shard 0 and splits the leaves across shards 0 and 1, so these
// runs exercise the (shard, lane) merge across a real shard boundary.
static_assert(sim::kDestShardSize == 4096,
              "shard-crossing tests assume 4096-receiver shards");

TEST(Transport, ZeroLengthPayloadsCrossShardBuffers) {
  auto run = [](AuditMode mode) {
    const Graph g = star(5000);
    Network net(g, 1, mode);
    std::uint64_t delivered = 0;
    Script p(2, [&](Mailbox& mb) {
      if (mb.round() == 0 && mb.self() == 0) {
        mb.send_all(std::span<const Word>{});  // fans out into two shards
      }
      if (mb.round() == 0 && mb.self() != 0) {
        mb.send(0, std::span<const Word>{});  // 5000 senders into shard 0
      }
      for (const MessageView& m : mb.inbox()) {
        ++delivered;
        EXPECT_TRUE(m.payload.empty());
      }
    });
    const auto met = net.run(p, 10);
    EXPECT_EQ(delivered, 10000u);
    EXPECT_EQ(met.messages, 10000u);
    EXPECT_EQ(met.total_words, 0u);
    return met.trace_digest;
  };
  EXPECT_EQ(run(AuditMode::kStrict), run(AuditMode::kFast));
}

TEST(Transport, BroadcastStoredOnceAcrossShards) {
  // Coalescing must not copy the broadcast payload per shard buffer: every
  // receiver's view — in either destination shard — aliases the same words.
  const Graph g = star(5000);
  Network net(g, 4);
  std::vector<const Word*> bases;
  Script p(2, [&](Mailbox& mb) {
    if (mb.round() == 0 && mb.self() == 0) mb.send_all({7, 8, 9});
    for (const MessageView& m : mb.inbox()) {
      ASSERT_EQ(m.payload.size(), 3u);
      EXPECT_EQ(m.payload[0], 7u);
      bases.push_back(m.payload.data());
    }
  });
  const auto met = net.run(p, 10);
  ASSERT_EQ(bases.size(), 5000u);
  for (const Word* b : bases) EXPECT_EQ(b, bases.front());
  EXPECT_EQ(met.messages, 5000u);     // model cost: one per edge-message
  EXPECT_EQ(met.total_words, 15000u);  // ...even though the arena stores 3
}

TEST(Transport, Cap1ArcDedupSpansShards) {
  const Graph g = star(5000);
  {
    // Distinct arcs into different destination shards are independent.
    Network net(g, 1);
    std::uint64_t got = 0;
    Script ok(2, [&](Mailbox& mb) {
      if (mb.round() == 0 && mb.self() == 0) {
        mb.send(100, Word{1});   // shard 0
        mb.send(4500, Word{2});  // shard 1
      }
      for (const MessageView& m : mb.inbox()) got += m.payload[0];
    });
    net.run(ok, 10);
    EXPECT_EQ(got, 3u);
  }
  {
    // The per-arc round stamp must still fire when the duplicate lands in a
    // shard buffer other than shard 0.
    Network net(g, 1);
    Script dup(1, [&](Mailbox& mb) {
      if (mb.round() == 0 && mb.self() == 0) {
        mb.send(4500, Word{1});
        mb.send(4500, Word{2});  // same arc, same round, shard 1
      }
    });
    EXPECT_THROW(net.run(dup, 10), std::invalid_argument);
  }
}

TEST(Transport, NetworkReusableAfterAggregatedRound) {
  // A second run on the same Network must start from empty shard buffers:
  // no replayed entries, no stale pending counts, same per-run delivery.
  const Graph g = star(5000);
  Network net(g, 1);
  auto once = [&]() {
    const std::uint64_t base = net.round();
    Script p(base + 2, [&](Mailbox& mb) {
      if (mb.round() == base && mb.self() == 0) mb.send_all({Word{9}});
      if (mb.round() == base && mb.self() >= 4500) mb.send(0, Word{3});
    });
    return net.run(p, 10);
  };
  const auto a = once();
  const auto b = once();
  EXPECT_EQ(a.messages, 5501u);  // 5000 broadcast + 501 far-shard replies
  EXPECT_EQ(b.messages - a.messages, 5501u);
  EXPECT_FALSE(net.has_pending_messages());
}

TEST(Transport, ArenaViewsStableWithinRoundAcrossManySizes) {
  // Mixed-length payloads from many senders into one receiver: every view
  // must point at its own words even as the arena grows (bump allocation
  // must not invalidate previously delivered views mid-round).
  const Graph g = star(32);
  Network net(g, sim::kUnboundedMessages);
  bool checked = false;
  Script p(2, [&](Mailbox& mb) {
    if (mb.round() == 0 && mb.self() != 0) {
      std::vector<Word> payload(mb.self() % 7 + 1, Word{mb.self()});
      mb.send(0, payload);
    }
    if (mb.round() == 1 && mb.self() == 0) {
      checked = true;
      ASSERT_EQ(mb.inbox().size(), 32u);
      for (const MessageView& m : mb.inbox()) {
        ASSERT_EQ(m.payload.size(), m.from % 7 + 1);
        for (Word w : m.payload) EXPECT_EQ(w, Word{m.from});
      }
    }
  });
  net.run(p, 10);
  EXPECT_TRUE(checked);
}

}  // namespace
}  // namespace ultra
