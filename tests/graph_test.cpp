#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "graph/generators.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace ultra::graph {
namespace {

TEST(Graph, EmptyGraph) {
  const Graph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Graph, FromEdgesDedupsAndDropsLoops) {
  const Graph g = Graph::from_edges(
      4, {{0, 1}, {1, 0}, {2, 2}, {1, 2}, {1, 2}, {3, 0}});
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);  // (0,1), (1,2), (0,3)
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(0, 3));
  EXPECT_FALSE(g.has_edge(2, 2));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(Graph, FromEdgesRejectsOutOfRange) {
  EXPECT_THROW(Graph::from_edges(3, {{0, 3}}), std::out_of_range);
}

TEST(Graph, NeighborsSortedAndDegreesMatch) {
  const Graph g = Graph::from_edges(5, {{4, 0}, {4, 2}, {4, 1}, {4, 3}});
  const auto nbrs = g.neighbors(4);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(g.degree(4), 4u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.max_degree(), 4u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 8.0 / 5.0);
}

TEST(Graph, EdgesNormalizedSorted) {
  const Graph g = Graph::from_edges(4, {{3, 1}, {2, 0}, {1, 0}});
  const auto edges = g.edges();
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_TRUE(std::is_sorted(edges.begin(), edges.end()));
  for (const Edge& e : edges) EXPECT_LT(e.u, e.v);
}

TEST(GraphBuilder, GrowsVertices) {
  GraphBuilder b;
  b.add_edge(7, 2);
  b.add_edge(2, 7);  // duplicate
  b.add_edge(3, 3);  // loop, ignored
  const Graph g = std::move(b).build();
  EXPECT_EQ(g.num_vertices(), 8u);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Generators, PathCycleComplete) {
  EXPECT_EQ(path_graph(10).num_edges(), 9u);
  EXPECT_EQ(cycle_graph(10).num_edges(), 10u);
  EXPECT_EQ(complete_graph(10).num_edges(), 45u);
  EXPECT_EQ(complete_bipartite(3, 4).num_edges(), 12u);
  EXPECT_EQ(complete_bipartite(3, 4).num_vertices(), 7u);
}

TEST(Generators, GridAndTorusCounts) {
  const Graph grid = grid_graph(5, 4);
  EXPECT_EQ(grid.num_vertices(), 20u);
  EXPECT_EQ(grid.num_edges(), 4u * 4 + 5u * 3);  // 31
  const Graph torus = torus_graph(5, 4);
  EXPECT_EQ(torus.num_vertices(), 20u);
  EXPECT_EQ(torus.num_edges(), 40u);  // 2n for width,height >= 3
}

TEST(Generators, Hypercube) {
  const Graph h = hypercube(4);
  EXPECT_EQ(h.num_vertices(), 16u);
  EXPECT_EQ(h.num_edges(), 32u);
  for (VertexId v = 0; v < 16; ++v) EXPECT_EQ(h.degree(v), 4u);
}

TEST(Generators, ErdosRenyiGnmExactCount) {
  util::Rng rng(5);
  const Graph g = erdos_renyi_gnm(100, 250, rng);
  EXPECT_EQ(g.num_vertices(), 100u);
  EXPECT_EQ(g.num_edges(), 250u);
}

TEST(Generators, ErdosRenyiGnmClampsToCompleteGraph) {
  util::Rng rng(5);
  const Graph g = erdos_renyi_gnm(10, 1000, rng);
  EXPECT_EQ(g.num_edges(), 45u);
}

TEST(Generators, ErdosRenyiGnpDensityApproximatelyP) {
  util::Rng rng(6);
  const Graph g = erdos_renyi_gnp(400, 0.05, rng);
  const double expected = 0.05 * (400.0 * 399.0 / 2.0);
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected,
              4.0 * std::sqrt(expected));
}

TEST(Generators, ErdosRenyiGnpEdgesValid) {
  util::Rng rng(8);
  const Graph g = erdos_renyi_gnp(50, 0.2, rng);
  for (const Edge& e : g.edges()) {
    EXPECT_LT(e.u, e.v);
    EXPECT_LT(e.v, 50u);
  }
}

TEST(Generators, ConnectedGnmIsConnected) {
  util::Rng rng(7);
  const Graph g = connected_gnm(200, 100, rng);
  // Tree edges guarantee connectivity even with few random edges.
  std::vector<std::uint8_t> seen(g.num_vertices(), 0);
  std::vector<VertexId> stack{0};
  seen[0] = 1;
  std::size_t count = 1;
  while (!stack.empty()) {
    const VertexId v = stack.back();
    stack.pop_back();
    for (const VertexId w : g.neighbors(v)) {
      if (!seen[w]) {
        seen[w] = 1;
        ++count;
        stack.push_back(w);
      }
    }
  }
  EXPECT_EQ(count, g.num_vertices());
}

TEST(Generators, RandomTreeHasNMinus1Edges) {
  util::Rng rng(9);
  const Graph t = random_tree(64, rng);
  EXPECT_EQ(t.num_edges(), 63u);
}

TEST(Generators, RandomRegularDegreesBounded) {
  util::Rng rng(10);
  const Graph g = random_regular(100, 6, rng);
  std::size_t exact = 0;
  for (VertexId v = 0; v < 100; ++v) {
    EXPECT_LE(g.degree(v), 6u);
    exact += (g.degree(v) == 6);
  }
  EXPECT_GT(exact, 60u);  // most vertices keep full degree
}

TEST(Generators, RingOfCliques) {
  const Graph g = ring_of_cliques(5, 4);
  EXPECT_EQ(g.num_vertices(), 20u);
  EXPECT_EQ(g.num_edges(), 5u * 6 + 5u);
}

TEST(Generators, CliqueChainStructure) {
  const Graph g = clique_chain(3, 5, 4);
  // 3 cliques of 5 + 2 gaps x 3 interior path vertices.
  EXPECT_EQ(g.num_vertices(), 15u + 2 * 3);
  EXPECT_EQ(g.num_edges(), 3u * 10 + 2u * 4);
}

TEST(Generators, PreferentialAttachmentConnectedish) {
  util::Rng rng(11);
  const Graph g = preferential_attachment(200, 2, rng);
  EXPECT_EQ(g.num_vertices(), 200u);
  EXPECT_GE(g.num_edges(), 199u * 1);  // each vertex adds >= 1 edge
}

}  // namespace
}  // namespace ultra::graph
