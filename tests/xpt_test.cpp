#include <gtest/gtest.h>

#include <cmath>

#include "core/xpt.h"
#include "util/rng.h"

namespace ultra::core {
namespace {

TEST(Xpt, BaseCases) {
  EXPECT_DOUBLE_EQ(xpt_exact(0.25, 0).value, 0.0);
  // X^1_p = (1-p) + (q-1)(1-p)^{q+1} maximized over q; for p=1/2 the max is
  // at small q -- verify against a direct scan.
  const double p = 0.5;
  double direct = 0.0;
  for (std::uint64_t q = 0; q <= 100; ++q) {
    direct = std::max(direct, (1 - p) + (static_cast<double>(q) - 1) *
                                            std::pow(1 - p, q + 1.0));
  }
  EXPECT_NEAR(xpt_exact(p, 1).value, direct, 1e-12);
}

TEST(Xpt, Equation3BoundOnX1) {
  // X^1_p < (1 - 2/e) + 1/(e p)  (Eq. 3).
  for (const double p : {0.5, 0.25, 0.125, 1.0 / 64}) {
    EXPECT_LT(xpt_exact(p, 1).value,
              (1.0 - 2.0 / std::exp(1.0)) + 1.0 / (std::exp(1.0) * p))
        << "p=" << p;
  }
}

TEST(Xpt, MonotoneInT) {
  for (const double p : {0.25, 0.1}) {
    double prev = 0.0;
    for (unsigned t = 1; t <= 20; ++t) {
      const double cur = xpt_exact(p, t).value;
      EXPECT_GT(cur, prev);
      prev = cur;
    }
  }
}

TEST(Xpt, ClosedFormDominatesExactDP) {
  // Equation (4): X_p^t <= p^{-1}(ln(t+1) - zeta) + t.
  for (const double p : {0.5, 0.25, 0.125, 1.0 / 32, 1.0 / 64}) {
    for (unsigned t = 1; t <= 64; t += 3) {
      EXPECT_LE(xpt_exact(p, t).value, xpt_closed_form(p, t) + 1e-9)
          << "p=" << p << " t=" << t;
    }
  }
}

TEST(Xpt, ClosedFormIsReasonablyTight) {
  // The DP should land within a constant gap of the closed form (the paper's
  // analysis loses only lower-order terms).
  const double p = 1.0 / 16;
  const unsigned t = 17;  // s_1 + 1 for D = 16
  const double exact = xpt_exact(p, t).value;
  const double bound = xpt_closed_form(p, t);
  EXPECT_GT(exact, 0.3 * bound);
}

TEST(Xpt, ZetaConstant) {
  EXPECT_NEAR(kXptZeta, std::log(2.0) - 1.0 / std::exp(1.0), 1e-15);
  EXPECT_NEAR(kXptZeta, 0.325, 0.001);  // the paper's quoted value
}

TEST(Xpt, MonteCarloMatchesDP) {
  util::Rng rng(77);
  const double p = 0.25;
  const unsigned t = 5;
  const double mc = xpt_monte_carlo(p, t, 200000, rng);
  const double dp = xpt_exact(p, t).value;
  // The MC plays the DP-optimal adversary, so its mean equals the DP value.
  EXPECT_NEAR(mc, dp, 0.05 * dp + 0.05);
}

TEST(Xpt, ArgmaxGrowsWithT) {
  const double p = 0.125;
  const auto s3 = xpt_exact(p, 3);
  const auto s20 = xpt_exact(p, 20);
  EXPECT_GT(s20.argmax_q, s3.argmax_q);
  // Analytic location: q* = -1/ln(1-p) + X^{t-1} + O(1), so it exceeds 1/p
  // and stays below the closed-form-based estimate
  // t + p^{-1}(ln t - zeta + 1) (which substitutes the upper bound for X).
  EXPECT_GE(static_cast<double>(s20.argmax_q), 1.0 / p);
  const double upper = 20.0 + (std::log(20.0) - kXptZeta + 1.0) / p;
  EXPECT_LE(static_cast<double>(s20.argmax_q), upper);
}

}  // namespace
}  // namespace ultra::core
