// Seeded fuzzing of the runtime certificates (check/certify.h).
//
// check_test covers hand-built negatives; this harness closes the gap with a
// randomized loop: build a *valid* artifact on a random graph, assert the
// certifier accepts it, apply one randomly chosen corruption from a menu —
// dropped spanner edge (breaking connectivity or stretch), a spanner edge
// foreign to the host, a member naming a non-center as its cluster, an
// understated cluster radius, a member teleported into a cluster it has no
// path inside — and assert the certifier rejects the corrupted artifact.
// Every corruption is constructed so detection is guaranteed (not merely
// likely), so a single surviving corruption is a certifier bug.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "check/certify.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "spanner/spanner.h"
#include "util/rng.h"

namespace ultra {
namespace {

using graph::Graph;
using graph::VertexId;

// --- Spanner corruptions ---------------------------------------------------

// Dropping any edge of a tree disconnects it: with the host's full edge set
// as the spanner, removing one edge must trip the connectivity check.
TEST(CertifyFuzz, DroppedTreeEdgeBreaksConnectivity) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    util::Rng rng(seed);
    const auto n = static_cast<VertexId>(16 + rng.next_below(60));
    const Graph g = graph::random_tree(n, rng);
    const check::SpannerCertifyOptions exact{.alpha = 1.0,
                                             .beta = 0.0,
                                             .sample_sources = 0,
                                             .seed = seed,
                                             .require_connectivity = true};

    spanner::Spanner full(g);
    for (const auto& e : g.edges()) full.add_edge(e);
    ASSERT_TRUE(check::certify_spanner(g, full, exact).ok)
        << "clean artifact rejected, seed " << seed;

    const auto drop = rng.next_below(g.num_edges());
    spanner::Spanner corrupted(g);
    for (std::size_t i = 0; i < g.edges().size(); ++i) {
      if (i != drop) corrupted.add_edge(g.edges()[i]);
    }
    const auto cert = check::certify_spanner(g, corrupted, exact);
    EXPECT_FALSE(cert.ok) << "dropped tree edge " << drop
                          << " not caught, seed " << seed;
  }
}

// Dropping a cycle edge leaves the graph connected but stretches the two
// endpoints from distance 1 to n-1, far past any constant alpha.
TEST(CertifyFuzz, DroppedCycleEdgeBreaksStretch) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    util::Rng rng(100 + seed);
    const auto n = static_cast<VertexId>(8 + rng.next_below(40));
    const Graph g = graph::cycle_graph(n);
    const check::SpannerCertifyOptions opts{.alpha = 2.0,
                                            .beta = 0.0,
                                            .sample_sources = 0,
                                            .seed = seed,
                                            .require_connectivity = false};

    spanner::Spanner full(g);
    for (const auto& e : g.edges()) full.add_edge(e);
    ASSERT_TRUE(check::certify_spanner(g, full, opts).ok)
        << "clean artifact rejected, seed " << seed;

    const auto drop = rng.next_below(g.num_edges());
    spanner::Spanner corrupted(g);
    for (std::size_t i = 0; i < g.edges().size(); ++i) {
      if (i != drop) corrupted.add_edge(g.edges()[i]);
    }
    const auto cert = check::certify_spanner(g, corrupted, opts);
    EXPECT_FALSE(cert.ok) << "dropped cycle edge " << drop
                          << " not caught, seed " << seed;
  }
}

// A spanner carrying an edge the host does not have must be rejected no
// matter how generous the distortion bound: certify the full spanner of g
// against a host rebuilt without one random edge.
TEST(CertifyFuzz, ForeignSpannerEdgeCaught) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    util::Rng rng(200 + seed);
    const auto n = static_cast<VertexId>(16 + rng.next_below(60));
    const Graph g = graph::connected_gnm(n, 2 * n, rng);
    spanner::Spanner full(g);
    for (const auto& e : g.edges()) full.add_edge(e);

    const auto drop = rng.next_below(g.num_edges());
    graph::GraphBuilder b(n);
    for (std::size_t i = 0; i < g.edges().size(); ++i) {
      if (i != drop) b.add_edge(g.edges()[i].u, g.edges()[i].v);
    }
    const Graph host_without = std::move(b).build();

    const check::SpannerCertifyOptions lax{.alpha = 1e9,
                                           .beta = 1e9,
                                           .sample_sources = 1,
                                           .seed = seed,
                                           .require_connectivity = false};
    ASSERT_TRUE(check::certify_spanner(g, full, lax).ok);
    const auto cert = check::certify_spanner(host_without, full, lax);
    EXPECT_FALSE(cert.ok) << "foreign edge " << drop << " not caught, seed "
                          << seed;
  }
}

// --- Clustering corruptions ------------------------------------------------

struct Clustering {
  std::vector<std::uint8_t> alive;
  std::vector<VertexId> cluster_of;
  std::vector<std::uint32_t> radius;
};

// Valid clustering by BFS Voronoi growth from k random centers: clusters are
// connected by construction and radius[c] records the true max depth. With
// k < n, pigeonhole guarantees some cluster has a non-center member.
Clustering make_valid_clustering(const Graph& g, std::uint32_t k,
                                 util::Rng& rng) {
  const VertexId n = g.num_vertices();
  Clustering cl;
  cl.alive.assign(n, 1);
  cl.cluster_of.assign(n, graph::kInvalidVertex);
  cl.radius.assign(n, 0);

  std::vector<VertexId> frontier;
  for (const std::uint32_t c : rng.sample_indices(n, k)) {
    cl.cluster_of[c] = c;
    frontier.push_back(c);
  }
  std::uint32_t depth = 0;
  while (!frontier.empty()) {
    std::vector<VertexId> next;
    for (const VertexId u : frontier) {
      const VertexId c = cl.cluster_of[u];
      if (cl.radius[c] < depth) cl.radius[c] = depth;
      for (const VertexId w : g.neighbors(u)) {
        if (cl.cluster_of[w] == graph::kInvalidVertex) {
          cl.cluster_of[w] = c;
          next.push_back(w);
        }
      }
    }
    frontier = std::move(next);
    ++depth;
  }
  // Unreached vertices (disconnected from every center) become their own
  // singleton clusters so the baseline artifact is valid.
  for (VertexId v = 0; v < n; ++v) {
    if (cl.cluster_of[v] == graph::kInvalidVertex) cl.cluster_of[v] = v;
  }
  return cl;
}

check::Certificate certify(const Graph& g, const Clustering& cl) {
  return check::certify_clustering(g, cl.alive, cl.cluster_of, cl.radius);
}

TEST(CertifyFuzz, WrongClusterCenterCaught) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    util::Rng rng(300 + seed);
    const auto n = static_cast<VertexId>(24 + rng.next_below(60));
    const Graph g = graph::connected_gnm(n, 2 * n, rng);
    Clustering cl = make_valid_clustering(
        g, static_cast<std::uint32_t>(2 + rng.next_below(n / 8)), rng);
    ASSERT_TRUE(certify(g, cl).ok) << "clean artifact rejected, seed " << seed;

    // Point some vertex at a non-center member: k < n guarantees one exists.
    std::vector<VertexId> non_centers;
    for (VertexId v = 0; v < n; ++v) {
      if (cl.cluster_of[v] != v) non_centers.push_back(v);
    }
    ASSERT_FALSE(non_centers.empty());
    const VertexId target =
        non_centers[rng.next_below(non_centers.size())];
    VertexId victim = static_cast<VertexId>(rng.next_below(n));
    if (victim == target) victim = (victim + 1) % n;
    cl.cluster_of[victim] = target;
    EXPECT_FALSE(certify(g, cl).ok)
        << "non-center cluster head not caught, seed " << seed;
  }
}

TEST(CertifyFuzz, UnderstatedRadiusCaught) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    util::Rng rng(400 + seed);
    const auto n = static_cast<VertexId>(24 + rng.next_below(60));
    const Graph g = graph::connected_gnm(n, 2 * n, rng);
    Clustering cl = make_valid_clustering(
        g, static_cast<std::uint32_t>(2 + rng.next_below(n / 8)), rng);
    ASSERT_TRUE(certify(g, cl).ok) << "clean artifact rejected, seed " << seed;

    // Some cluster has depth >= 1 (k < n and the graph is connected, so some
    // cluster has a member besides its center). Understate its radius.
    std::vector<VertexId> deep_centers;
    for (VertexId c = 0; c < n; ++c) {
      if (cl.cluster_of[c] == c && cl.radius[c] >= 1) deep_centers.push_back(c);
    }
    ASSERT_FALSE(deep_centers.empty());
    const VertexId c = deep_centers[rng.next_below(deep_centers.size())];
    cl.radius[c] -= 1;
    EXPECT_FALSE(certify(g, cl).ok)
        << "understated radius at center " << c << " not caught, seed "
        << seed;
  }
}

TEST(CertifyFuzz, TeleportedMemberCaught) {
  std::uint64_t applied = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    util::Rng rng(500 + seed);
    const auto n = static_cast<VertexId>(24 + rng.next_below(60));
    const Graph g = graph::connected_gnm(n, 2 * n, rng);
    Clustering cl = make_valid_clustering(
        g, static_cast<std::uint32_t>(2 + rng.next_below(n / 8)), rng);
    ASSERT_TRUE(certify(g, cl).ok) << "clean artifact rejected, seed " << seed;

    // Move a non-center member into a cluster none of its neighbors belong
    // to: the center's restricted BFS can never reach it, so the member
    // count audit must fire. Such a pair need not exist on every draw; skip
    // those seeds and require a healthy number of applications overall.
    bool done = false;
    for (VertexId v = 0; v < n && !done; ++v) {
      if (cl.cluster_of[v] == v) continue;  // keep centers in place
      for (VertexId c = 0; c < n && !done; ++c) {
        if (cl.cluster_of[c] != c || c == cl.cluster_of[v]) continue;
        bool adjacent = false;
        for (const VertexId w : g.neighbors(v)) {
          if (cl.cluster_of[w] == c) adjacent = true;
        }
        if (adjacent) continue;
        cl.cluster_of[v] = c;
        EXPECT_FALSE(certify(g, cl).ok)
            << "teleported member " << v << " -> " << c
            << " not caught, seed " << seed;
        ++applied;
        done = true;
      }
    }
  }
  EXPECT_GE(applied, 10u) << "teleport corruption almost never applicable; "
                             "fuzz coverage lost";
}

}  // namespace
}  // namespace ultra
