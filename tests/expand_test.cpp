#include <gtest/gtest.h>

#include <set>

#include "check/certify.h"
#include "core/expand.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace ultra::core {
namespace {

using graph::Graph;
using graph::VertexId;

std::vector<std::pair<VertexId, VertexId>> collect(
    ClusterState& state, double p, util::Rng& rng, ExpandOutcome* out = nullptr) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  const ExpandOutcome o = expand(state, p, rng, [&](VertexId a, VertexId b) {
    edges.emplace_back(a, b);
  });
  if (out) *out = o;
  return edges;
}

TEST(ClusterState, TrivialIsValid) {
  const Graph g = graph::cycle_graph(6);
  ClusterState s = ClusterState::trivial(g);
  EXPECT_EQ(s.num_alive(), 6u);
  EXPECT_EQ(s.live_cluster_ids().size(), 6u);
  EXPECT_NO_THROW(s.check_valid());
}

TEST(Expand, ProbabilityOneKeepsEveryoneNoEdges) {
  const Graph g = graph::complete_graph(8);
  ClusterState s = ClusterState::trivial(g);
  util::Rng rng(1);
  ExpandOutcome out;
  const auto edges = collect(s, 1.0, rng, &out);
  EXPECT_TRUE(edges.empty());
  EXPECT_EQ(out.clusters_sampled, 8u);
  EXPECT_EQ(out.vertices_died, 0u);
  EXPECT_EQ(s.num_alive(), 8u);
  EXPECT_NO_THROW(s.check_valid());
}

TEST(Expand, ProbabilityZeroKillsAllWithOneEdgePerAdjacentCluster) {
  const Graph g = graph::complete_graph(6);
  ClusterState s = ClusterState::trivial(g);
  util::Rng rng(1);
  ExpandOutcome out;
  const auto edges = collect(s, 0.0, rng, &out);
  EXPECT_EQ(out.vertices_died, 6u);
  EXPECT_EQ(s.num_alive(), 0u);
  // Each vertex selects one edge per adjacent singleton cluster: 5 each.
  EXPECT_EQ(edges.size(), 30u);
}

TEST(Expand, IsolatedVertexDiesSilently) {
  const Graph g = Graph::from_edges(3, {{0, 1}});
  ClusterState s = ClusterState::trivial(g);
  util::Rng rng(1);
  const auto edges = collect(s, 0.0, rng);
  EXPECT_EQ(s.num_alive(), 0u);
  // Vertex 2 contributed nothing; 0 and 1 one edge each (same edge, selected
  // twice -> reported twice by the callback, deduped by the spanner).
  EXPECT_EQ(edges.size(), 2u);
}

TEST(Expand, JoinersAttachToSampledCluster) {
  // Star: center 0, leaves 1..5. Force sampling so that only cluster {0} is
  // sampled (p such that the first draw wins is fragile; instead verify the
  // general invariant over many random runs).
  const Graph g = graph::complete_bipartite(1, 5);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    ClusterState s = ClusterState::trivial(g);
    util::Rng rng(seed);
    collect(s, 0.5, rng);
    s.check_valid();
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (!s.alive[v]) continue;
      const VertexId c = s.cluster_of[v];
      // Members are within distance 1 of their center in this star graph.
      EXPECT_TRUE(c == v || g.has_edge(c, v));
    }
  }
}

TEST(Expand, DeadVerticesStayDead) {
  const Graph g = graph::cycle_graph(10);
  ClusterState s = ClusterState::trivial(g);
  util::Rng rng(5);
  collect(s, 0.3, rng);
  const auto alive_after_first = s.alive;
  collect(s, 1.0, rng);  // p=1: nobody new dies
  EXPECT_EQ(s.alive, alive_after_first);
}

TEST(Expand, ClusterInvariantHoldsOverManyCalls) {
  util::Rng graph_rng(7);
  const Graph g = graph::connected_gnm(200, 600, graph_rng);
  ClusterState s = ClusterState::trivial(g);
  util::Rng rng(11);
  for (int call = 0; call < 5; ++call) {
    collect(s, 0.4, rng);
    ASSERT_NO_THROW(s.check_valid());
    // Radii grow at most once per call.
    for (VertexId c = 0; c < g.num_vertices(); ++c) {
      EXPECT_LE(s.radius[c], static_cast<std::uint32_t>(call + 1));
    }
  }
}

TEST(Expand, SelectedEdgesAreGraphEdges) {
  util::Rng graph_rng(9);
  const Graph g = graph::erdos_renyi_gnm(100, 300, graph_rng);
  ClusterState s = ClusterState::trivial(g);
  util::Rng rng(13);
  for (int call = 0; call < 3; ++call) {
    for (const auto& [a, b] : collect(s, 0.3, rng)) {
      EXPECT_TRUE(g.has_edge(a, b));
    }
  }
}

TEST(Expand, DyingVertexSelectsOneEdgePerDistinctCluster) {
  // Path 0-1-2: with p=0, vertex 1 is adjacent to clusters {0} and {2} and
  // must select exactly 2 edges.
  const Graph g = graph::path_graph(3);
  ClusterState s = ClusterState::trivial(g);
  util::Rng rng(1);
  const auto edges = collect(s, 0.0, rng);
  std::set<std::pair<VertexId, VertexId>> from_1;
  for (const auto& e : edges) {
    if (e.first == 1) from_1.insert(e);
  }
  EXPECT_EQ(from_1.size(), 2u);
}

TEST(Expand, DeterministicForSeed) {
  util::Rng graph_rng(15);
  const Graph g = graph::erdos_renyi_gnm(80, 200, graph_rng);
  auto run = [&](std::uint64_t seed) {
    ClusterState s = ClusterState::trivial(g);
    util::Rng rng(seed);
    std::vector<std::pair<VertexId, VertexId>> all;
    for (int i = 0; i < 4; ++i) {
      auto e = collect(s, 0.35, rng);
      all.insert(all.end(), e.begin(), e.end());
    }
    return all;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(Expand, ClusteringCertifiedAfterEveryCall) {
  // The independent certificate (own membership + restricted-BFS radius
  // audit) must agree with check_valid() at every step of a sampling sweep.
  util::Rng graph_rng(19);
  const Graph g = graph::connected_gnm(250, 800, graph_rng);
  ClusterState s = ClusterState::trivial(g);
  util::Rng rng(23);
  for (const double p : {0.9, 0.5, 0.3, 0.1}) {
    collect(s, p, rng);
    const auto cert =
        check::certify_clustering(g, s.alive, s.cluster_of, s.radius);
    ASSERT_TRUE(cert.ok) << "p=" << p << ": " << cert.violation;
    EXPECT_GT(cert.checks, 0u);
  }
}

}  // namespace
}  // namespace ultra::core
